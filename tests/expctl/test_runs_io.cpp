#include "expctl/runs_io.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "expctl/spec_io.hpp"
#include "scenario/registry.hpp"

namespace ec = drowsy::expctl;
namespace sc = drowsy::scenario;

namespace {

sc::RunResult sample_result() {
  sc::RunResult r;
  r.scenario = "paper-testbed";
  r.policy = "drowsy-dc";
  r.seed = 0xDEADBEEFCAFEF00Dull;
  r.simulated_hours = 72;
  r.kwh = 12.3456789012345678;  // more precision than %.6f keeps
  r.suspend_fraction = 0.123456789;
  r.sla_attainment = 1.0 / 3.0;
  r.wake_latency_p99_ms = 812.0000001;
  r.requests = 1234;
  r.wakes = 567;
  r.migrations = -3;  // int fields round-trip signed values too
  r.suspends = 42;
  r.host_suspend_fraction = {0.0, 0.987654321987654321, 1.0 / 7.0};
  r.switch_queue_delay_p99_ms = 5.0000001;
  r.wol_frames = 27;
  r.host_unreachable_s = 21585.001;
  return r;
}

}  // namespace

TEST(RunsIo, Fnv1a64KnownVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(ec::fnv1a64(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(ec::fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(ec::fnv1a64("foobar"), 0x85944171F73967E8ull);
}

TEST(RunsIo, Hex64RoundTrip) {
  for (const std::uint64_t v : {0ull, 1ull, 0xCBF29CE484222325ull, ~0ull}) {
    EXPECT_EQ(ec::parse_hex64(ec::hex64(v)), v);
  }
  EXPECT_EQ(ec::hex64(0), "0000000000000000");
  EXPECT_THROW(static_cast<void>(ec::parse_hex64("xyz")), ec::SpecError);
  EXPECT_THROW(static_cast<void>(ec::parse_hex64("00000000000000")), ec::SpecError);
  EXPECT_THROW(static_cast<void>(ec::parse_hex64("00000000000000ZZ")), ec::SpecError);
}

TEST(RunsIo, RunResultRoundTripsExactly) {
  const sc::RunResult r = sample_result();
  const ec::Json j = ec::to_json(r);
  const sc::RunResult back = ec::run_result_from_json(j);
  EXPECT_EQ(back.scenario, r.scenario);
  EXPECT_EQ(back.policy, r.policy);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.simulated_hours, r.simulated_hours);
  // Bit-exact doubles, not just approximately equal — merged CSVs must be
  // byte-identical to single-process ones.
  EXPECT_EQ(back.kwh, r.kwh);
  EXPECT_EQ(back.suspend_fraction, r.suspend_fraction);
  EXPECT_EQ(back.sla_attainment, r.sla_attainment);
  EXPECT_EQ(back.wake_latency_p99_ms, r.wake_latency_p99_ms);
  EXPECT_EQ(back.requests, r.requests);
  EXPECT_EQ(back.wakes, r.wakes);
  EXPECT_EQ(back.migrations, r.migrations);
  EXPECT_EQ(back.suspends, r.suspends);
  EXPECT_EQ(back.host_suspend_fraction, r.host_suspend_fraction);  // bit-exact
  EXPECT_EQ(back.switch_queue_delay_p99_ms, r.switch_queue_delay_p99_ms);
  EXPECT_EQ(back.wol_frames, r.wol_frames);
  EXPECT_EQ(back.host_unreachable_s, r.host_unreachable_s);
  // Dump byte-stability through a second cycle.
  EXPECT_EQ(ec::to_json(back).dump(), j.dump());
}

TEST(RunsIo, WakeFabricMetricsAreOptionalForOldJournalRows) {
  // Same schema-compat promise as host_suspend_fraction: rows journaled
  // before the wake-fabric metrics existed parse with them zeroed.
  const ec::Json full = ec::to_json(sample_result());
  ec::Json old_row = ec::Json::object();
  for (const auto& [key, value] : full.items()) {
    if (key != "switch_queue_delay_p99_ms" && key != "wol_frames" &&
        key != "host_unreachable_s") {
      old_row.set(key, value);
    }
  }
  const sc::RunResult back = ec::run_result_from_json(old_row);
  EXPECT_EQ(back.switch_queue_delay_p99_ms, 0.0);
  EXPECT_EQ(back.wol_frames, 0u);
  EXPECT_EQ(back.host_unreachable_s, 0.0);

  ec::Json wrong_type = ec::to_json(sample_result());
  wrong_type.set("wol_frames", "many");
  EXPECT_THROW(static_cast<void>(ec::run_result_from_json(wrong_type)), ec::SpecError);
}

TEST(RunsIo, HostFractionsAreOptionalForOldJournalRows) {
  // Rows journaled before host_suspend_fraction existed must keep
  // parsing (the wall_ms schema-compat promise).
  const ec::Json full = ec::to_json(sample_result());
  ec::Json old_row = ec::Json::object();
  for (const auto& [key, value] : full.items()) {
    if (key != "host_suspend_fraction") old_row.set(key, value);
  }
  const sc::RunResult back = ec::run_result_from_json(old_row);
  EXPECT_TRUE(back.host_suspend_fraction.empty());
  EXPECT_EQ(back.suspends, sample_result().suspends);

  ec::Json wrong_type = ec::to_json(sample_result());
  wrong_type.set("host_suspend_fraction", "nope");
  EXPECT_THROW(static_cast<void>(ec::run_result_from_json(wrong_type)), ec::SpecError);
}

TEST(RunsIo, RunResultParseIsStrict) {
  ec::Json j = ec::to_json(sample_result());
  j.set("surprise", 1);
  EXPECT_THROW(static_cast<void>(ec::run_result_from_json(j)), ec::SpecError);

  ec::Json missing = ec::Json::object();
  missing.set("scenario", "s");
  EXPECT_THROW(static_cast<void>(ec::run_result_from_json(missing)), ec::SpecError);

  ec::Json wrong_type = ec::to_json(sample_result());
  wrong_type.set("kwh", "lots");
  EXPECT_THROW(static_cast<void>(ec::run_result_from_json(wrong_type)), ec::SpecError);
}

TEST(RunsIo, SpecHashTracksContent) {
  const sc::ScenarioSpec base = *sc::ScenarioRegistry::builtin().find("paper-testbed");
  sc::ScenarioSpec tweaked = base;
  EXPECT_EQ(ec::spec_hash(base), ec::spec_hash(tweaked));  // copies hash equal
  tweaked.request_rate_per_hour += 1.0;
  EXPECT_NE(ec::spec_hash(base), ec::spec_hash(tweaked));
}
