// Shared by the baselines test fixtures: prefix+n built by append, not
// operator+(const char*, string&&), which GCC 12's -O3 -Wrestrict pass
// flags as a potentially overlapping self-memcpy (upstream PR105651,
// false positive, gone in GCC 13).
#pragma once

#include <cstddef>
#include <string>

namespace drowsy_test {

inline std::string indexed_name(const char* prefix, std::size_t n) {
  std::string name(prefix);
  name += std::to_string(n);
  return name;
}

}  // namespace drowsy_test
