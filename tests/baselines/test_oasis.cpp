#include "baselines/oasis.hpp"

#include <gtest/gtest.h>

#include "indexed_name.hpp"
#include "trace/generators.hpp"

namespace b = drowsy::baselines;
namespace s = drowsy::sim;
namespace t = drowsy::trace;

namespace {

using drowsy_test::indexed_name;

struct OasisFixture : ::testing::Test {
  s::EventQueue q;
  s::Cluster cluster{q};

  s::Host& add_host(int max_vms = 2) {
    return cluster.add_host(
        s::HostSpec{indexed_name("P", cluster.hosts().size() + 1), 8, 16384, max_vms});
  }
  s::Vm& add_vm(t::ActivityTrace trace) {
    return cluster.add_vm(s::VmSpec{indexed_name("V", cluster.vms().size() + 1), 2, 6144},
                          std::move(trace));
  }
};

}  // namespace

TEST_F(OasisFixture, PairScoreIdenticalTraces) {
  add_host();
  add_host();
  t::GenOptions o;
  o.years = 1;
  auto& a = add_vm(t::daily_backup(o));
  auto& b_vm = add_vm(t::daily_backup(o));
  cluster.place(a.id(), 0);
  cluster.place(b_vm.id(), 1);
  b::OasisConsolidation oasis(cluster);
  for (std::int64_t h = 1; h <= 48; ++h) oasis.run_hour(h);
  EXPECT_DOUBLE_EQ(oasis.pair_score(a.id(), b_vm.id()), 1.0);
}

TEST_F(OasisFixture, PairScoreOppositePhases) {
  add_host();
  add_host();
  // a idle on even hours, active on odd; b the inverse.
  std::vector<double> pa, pb;
  for (int h = 0; h < 600; ++h) {
    pa.push_back(h % 2 == 0 ? 0.0 : 0.5);
    pb.push_back(h % 2 == 0 ? 0.5 : 0.0);
  }
  auto& a = add_vm(t::ActivityTrace(std::move(pa)));
  auto& b_vm = add_vm(t::ActivityTrace(std::move(pb)));
  cluster.place(a.id(), 0);
  cluster.place(b_vm.id(), 1);
  b::OasisConsolidation oasis(cluster);
  for (std::int64_t h = 1; h <= 48; ++h) oasis.run_hour(h);
  EXPECT_DOUBLE_EQ(oasis.pair_score(a.id(), b_vm.id()), 0.0);
}

TEST_F(OasisFixture, UnknownVmScoresZero) {
  b::OasisConsolidation oasis(cluster);
  EXPECT_DOUBLE_EQ(oasis.pair_score(0, 1), 0.0);
}

TEST_F(OasisFixture, RepackColocatesCompatiblePairs) {
  for (int i = 0; i < 2; ++i) add_host();
  t::GenOptions o;
  o.years = 1;
  auto& a1 = add_vm(t::daily_backup(o, 2));
  auto& b1 = add_vm(t::office_hours(o));
  auto& a2 = add_vm(t::daily_backup(o, 2));
  auto& b2 = add_vm(t::office_hours(o));
  // Interleave so the initial placement is "wrong".
  cluster.place(a1.id(), 0);
  cluster.place(b1.id(), 0);
  cluster.place(a2.id(), 1);
  cluster.place(b2.id(), 1);
  b::OasisConfig cfg;
  cfg.repack_period_hours = 24;
  b::OasisConsolidation oasis(cluster, cfg);
  for (std::int64_t h = 1; h <= 72; ++h) oasis.run_hour(h);
  EXPECT_EQ(cluster.host_of(a1.id()), cluster.host_of(a2.id()))
      << "backup twins should share a host";
  EXPECT_EQ(cluster.host_of(b1.id()), cluster.host_of(b2.id()));
}

TEST_F(OasisFixture, RepackOnlyOnPeriod) {
  add_host();
  add_host();
  auto& a = add_vm(t::ActivityTrace(std::vector<double>(600, 0.0)));
  auto& b_vm = add_vm(t::ActivityTrace(std::vector<double>(600, 0.0)));
  cluster.place(a.id(), 0);
  cluster.place(b_vm.id(), 1);
  b::OasisConfig cfg;
  cfg.repack_period_hours = 24;
  b::OasisConsolidation oasis(cluster, cfg);
  for (std::int64_t h = 1; h <= 23; ++h) oasis.run_hour(h);
  EXPECT_EQ(cluster.total_migrations(), 0) << "no repack before the period elapses";
  oasis.run_hour(24);
  EXPECT_EQ(cluster.host_of(a.id()), cluster.host_of(b_vm.id()));
}

TEST_F(OasisFixture, LowScorePairsNotForced) {
  add_host();
  add_host();
  std::vector<double> pa, pb;
  for (int h = 0; h < 600; ++h) {
    pa.push_back(h % 2 == 0 ? 0.0 : 0.5);
    pb.push_back(h % 2 == 0 ? 0.5 : 0.0);
  }
  auto& a = add_vm(t::ActivityTrace(std::move(pa)));
  auto& b_vm = add_vm(t::ActivityTrace(std::move(pb)));
  cluster.place(a.id(), 0);
  cluster.place(b_vm.id(), 1);
  b::OasisConfig cfg;
  cfg.min_score = 0.5;
  cfg.repack_period_hours = 24;
  b::OasisConsolidation oasis(cluster, cfg);
  for (std::int64_t h = 1; h <= 48; ++h) oasis.run_hour(h);
  // Anti-correlated VMs score 0: they are never paired, so each stays a
  // singleton group (first-fit may still place them on the first host? —
  // no: two singleton groups of one VM each fit on host 0's two slots).
  // What matters for the baseline's quality is that the *pair* was not
  // formed because of the score; verify via pair_score.
  EXPECT_LT(oasis.pair_score(a.id(), b_vm.id()), cfg.min_score);
}

TEST_F(OasisFixture, NameIsOasis) {
  b::OasisConsolidation oasis(cluster);
  EXPECT_EQ(oasis.name(), "oasis");
}
