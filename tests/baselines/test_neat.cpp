#include "baselines/neat.hpp"

#include <gtest/gtest.h>

#include "indexed_name.hpp"
#include "trace/trace.hpp"

namespace b = drowsy::baselines;
namespace s = drowsy::sim;
namespace t = drowsy::trace;

namespace {

using drowsy_test::indexed_name;

struct NeatFixture : ::testing::Test {
  s::EventQueue q;
  s::Cluster cluster{q};

  s::Host& add_host(int max_vms = 4) {
    return cluster.add_host(
        s::HostSpec{indexed_name("P", cluster.hosts().size() + 1), 8, 16384, max_vms});
  }
  s::Vm& add_vm(double level, int mem_mb = 2048) {
    return cluster.add_vm(s::VmSpec{indexed_name("V", cluster.vms().size() + 1), 2, mem_mb},
                          t::ActivityTrace(std::vector<double>(600, level)));
  }
};

}  // namespace

TEST_F(NeatFixture, ThrOverloadDetection) {
  auto& host = add_host();
  b::NeatConfig cfg;
  cfg.overload = b::OverloadAlgo::Thr;
  cfg.threshold = 0.9;
  b::NeatConsolidation neat(cluster, cfg);
  EXPECT_FALSE(neat.overloaded(host, 0.85));
  EXPECT_TRUE(neat.overloaded(host, 0.95));
}

TEST_F(NeatFixture, MadFallsBackToThrWithoutHistory) {
  auto& host = add_host();
  b::NeatConfig cfg;
  cfg.overload = b::OverloadAlgo::Mad;
  b::NeatConsolidation neat(cluster, cfg);
  EXPECT_TRUE(neat.overloaded(host, 0.95));
  EXPECT_FALSE(neat.overloaded(host, 0.5));
}

TEST_F(NeatFixture, MadAdaptsThresholdAfterHistory) {
  auto& host = add_host();
  auto& vm = add_vm(0.0);
  cluster.place(vm.id(), host.id());
  b::NeatConfig cfg;
  cfg.overload = b::OverloadAlgo::Mad;
  cfg.safety = 2.5;
  b::NeatConsolidation neat(cluster, cfg);
  // Feed a few stable hours of history (utilization 0 — MAD 0, threshold 1).
  for (std::int64_t h = 1; h <= 6; ++h) neat.run_hour(h);
  EXPECT_FALSE(neat.overloaded(host, 0.95)) << "MAD=0 keeps the threshold at 1.0";
}

TEST_F(NeatFixture, OverloadedHostShedsUntilBelowThreshold) {
  auto& h1 = add_host();
  auto& h2 = add_host();
  (void)h2;
  // 4 VMs × 2 vCPUs × 1.0 / 8 = 1.0: overloaded.
  for (int i = 0; i < 4; ++i) {
    auto& vm = add_vm(1.0);
    cluster.place(vm.id(), h1.id());
  }
  b::NeatConsolidation neat(cluster);
  neat.run_hour(1);
  EXPECT_LT(cluster.host_utilization_at(h1, 1), 0.95);
  EXPECT_GT(cluster.total_migrations(), 0);
}

TEST_F(NeatFixture, MmtPicksSmallestMemoryVm) {
  auto& h1 = add_host();
  auto& h2 = add_host();
  (void)h2;
  auto& big = add_vm(1.0, /*mem_mb=*/8000);
  auto& small = add_vm(1.0, /*mem_mb=*/1000);
  auto& mid1 = add_vm(1.0, /*mem_mb=*/4000);
  auto& mid2 = add_vm(1.0, /*mem_mb=*/3000);
  for (auto* vm : {&big, &small, &mid1, &mid2}) cluster.place(vm->id(), h1.id());
  b::NeatConfig cfg;
  cfg.selection = b::SelectionAlgo::Mmt;
  b::NeatConsolidation neat(cluster, cfg);
  neat.run_hour(1);
  // The smallest VM migrates first under minimum-migration-time.
  EXPECT_GT(small.migration_count(), 0);
  EXPECT_EQ(big.migration_count(), 0);
}

TEST_F(NeatFixture, UnderloadedHostEvacuatesToActiveHost) {
  auto& lazy = add_host();
  auto& busy = add_host();
  auto& idle_vm = add_vm(0.05);
  cluster.place(idle_vm.id(), lazy.id());
  auto& busy_vm = add_vm(0.5);
  cluster.place(busy_vm.id(), busy.id());
  b::NeatConsolidation neat(cluster);
  neat.run_hour(1);
  EXPECT_TRUE(lazy.vms().empty()) << "underloaded host evacuated";
  EXPECT_EQ(cluster.host_of(idle_vm.id()), &busy);
}

TEST_F(NeatFixture, EvacuationAbortsWhenNoDestinationFits) {
  auto& lazy = add_host();
  auto& full = add_host(/*max_vms=*/1);
  auto& idle_vm = add_vm(0.05);
  cluster.place(idle_vm.id(), lazy.id());
  auto& blocker = add_vm(0.5);
  cluster.place(blocker.id(), full.id());
  b::NeatConsolidation neat(cluster);
  neat.run_hour(1);
  EXPECT_FALSE(lazy.vms().empty()) << "no feasible plan: nothing moves";
}

TEST_F(NeatFixture, PabfdPrefersAlreadyLoadedHost) {
  auto& h1 = add_host();
  auto& h2 = add_host();
  auto& h3 = add_host();
  (void)h3;
  // h2 is moderately loaded; the evacuated VM should join it rather than
  // the empty h3 (smaller power increase on a loaded host is equal, but
  // PABFD still picks the first minimal — verify it never lands on an
  // overloaded host).
  auto& mover = add_vm(0.1);
  cluster.place(mover.id(), h1.id());
  auto& anchor = add_vm(0.5);
  cluster.place(anchor.id(), h2.id());
  b::NeatConsolidation neat(cluster);
  neat.run_hour(1);
  EXPECT_EQ(cluster.host_of(mover.id()), &h2);
}

TEST_F(NeatFixture, LrDetectsRisingTrend) {
  auto& host = add_host();
  b::NeatConfig cfg;
  cfg.overload = b::OverloadAlgo::Lr;
  cfg.history = 8;
  b::NeatConsolidation neat(cluster, cfg);
  // Rising utilization history via a ramping VM trace.
  std::vector<double> ramp;
  for (int i = 0; i < 20; ++i) ramp.push_back(std::min(1.0, 0.1 * i));
  auto& vm = cluster.add_vm(s::VmSpec{"ramp", 8, 2048}, t::ActivityTrace(std::move(ramp)));
  cluster.place(vm.id(), host.id());
  bool flagged = false;
  for (std::int64_t h = 1; h < 12; ++h) {
    neat.run_hour(h);
    if (neat.overloaded(host, cluster.host_utilization_at(host, h))) flagged = true;
  }
  EXPECT_TRUE(flagged) << "local regression must flag a steadily rising host";
}

TEST_F(NeatFixture, RandomSelectionIsDeterministicPerSeed) {
  // Two identical clusters with the same seed make the same choices.
  auto run = [](std::uint64_t seed) {
    s::EventQueue q2;
    s::Cluster cl(q2);
    auto& h1 = cl.add_host(s::HostSpec{"P1", 8, 16384, 4});
    cl.add_host(s::HostSpec{"P2", 8, 16384, 4});
    std::vector<s::VmId> ids;
    for (int i = 0; i < 4; ++i) {
      auto& vm = cl.add_vm(s::VmSpec{indexed_name("V", static_cast<std::size_t>(i)), 2, 2048},
                           t::ActivityTrace(std::vector<double>(100, 1.0)));
      cl.place(vm.id(), h1.id());
      ids.push_back(vm.id());
    }
    b::NeatConfig cfg;
    cfg.selection = b::SelectionAlgo::Random;
    cfg.seed = seed;
    b::NeatConsolidation neat(cl, cfg);
    neat.run_hour(1);
    std::vector<int> migrations;
    for (auto id : ids) migrations.push_back(cl.vm(id)->migration_count());
    return migrations;
  };
  EXPECT_EQ(run(5), run(5));
}

TEST_F(NeatFixture, NameEncodesAlgorithms) {
  b::NeatConfig cfg;
  cfg.overload = b::OverloadAlgo::Iqr;
  cfg.selection = b::SelectionAlgo::Random;
  b::NeatConsolidation neat(cluster, cfg);
  EXPECT_EQ(neat.name(), "neat-iqr-rand");
  EXPECT_EQ(b::NeatConsolidation(cluster).name(), "neat-thr-mmt");
}
