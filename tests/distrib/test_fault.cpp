// distrib::fault contract: the catalogue is the source of truth, arming
// validates against it, the nth-hit counter is exact, and a triggered
// point kills the process with the crash exit code — reproducibly, so
// the chaos suite can assert *where* a victim died.
#include "distrib/fault.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "distrib/shard.hpp"

namespace dt = drowsy::distrib;
namespace fault = drowsy::distrib::fault;

namespace {

/// Every test leaves the process disarmed: a leaked armed point would
/// kill an unrelated later test at its next journal append.
struct FaultFixture : ::testing::Test {
  void SetUp() override { fault::disarm(); }
  void TearDown() override {
    fault::disarm();
    ::unsetenv("DROWSY_CRASH_AT");
  }
};

}  // namespace

TEST_F(FaultFixture, CatalogueIsStable) {
  // Docs and the chaos CI job iterate this list; adding a crash point
  // must extend it (and docs/sweeps.md), never reorder or drop names.
  const std::vector<std::string> expected = {
      "daemon.after_claim",   "daemon.after_lease",    "daemon.after_adopt",
      "journal.after_append", "journal.torn_append",   "daemon.before_archive",
      "daemon.mid_archive",   "reaper.before_commit",  "reaper.after_commit",
      "reaper.after_journal",
  };
  EXPECT_EQ(fault::catalogue(), expected);
}

TEST_F(FaultFixture, ArmRejectsUnknownPointsAndBadCounts) {
  if (!fault::compiled_in()) {
    // Compiled out, arming anything must refuse — including valid names.
    EXPECT_THROW(fault::arm("daemon.after_claim"), dt::DistribError);
    GTEST_SKIP() << "fault injection compiled out";
  }
  EXPECT_THROW(fault::arm("no.such.point"), dt::DistribError);
  EXPECT_THROW(fault::arm("daemon.after_claim:0"), dt::DistribError);
  EXPECT_THROW(fault::arm("daemon.after_claim:x"), dt::DistribError);
  EXPECT_THROW(fault::arm("daemon.after_claim:"), dt::DistribError);
  EXPECT_NO_THROW(fault::arm("daemon.after_claim"));
  EXPECT_NO_THROW(fault::arm("daemon.after_claim:3"));
}

TEST_F(FaultFixture, TriggeredFiresOnExactlyTheNthHit) {
  if (!fault::compiled_in()) GTEST_SKIP() << "fault injection compiled out";
  fault::arm("journal.after_append:3");
  EXPECT_FALSE(fault::triggered("journal.after_append"));
  EXPECT_FALSE(fault::triggered("journal.after_append"));
  EXPECT_TRUE(fault::triggered("journal.after_append"));
  // One-shot semantics: the 4th hit is past the armed count.
  EXPECT_FALSE(fault::triggered("journal.after_append"));
  EXPECT_EQ(fault::hits("journal.after_append"), 4u);
  // Unarmed points count hits but never fire.
  EXPECT_FALSE(fault::triggered("daemon.after_claim"));
  EXPECT_EQ(fault::hits("daemon.after_claim"), 1u);
  EXPECT_THROW(static_cast<void>(fault::hits("no.such.point")), dt::DistribError);
}

TEST_F(FaultFixture, ReArmingReplacesThePreviousPoint) {
  if (!fault::compiled_in()) GTEST_SKIP() << "fault injection compiled out";
  fault::arm("daemon.after_claim");
  fault::arm("daemon.before_archive");  // resets counters, moves the arm
  EXPECT_FALSE(fault::triggered("daemon.after_claim"));
  EXPECT_TRUE(fault::triggered("daemon.before_archive"));
}

TEST_F(FaultFixture, ArmFromEnvReadsDrowsyCrashAt) {
  if (!fault::compiled_in()) GTEST_SKIP() << "fault injection compiled out";
  ::unsetenv("DROWSY_CRASH_AT");
  fault::arm_from_env();  // unset: stays disarmed
  EXPECT_FALSE(fault::triggered("daemon.after_claim"));

  ::setenv("DROWSY_CRASH_AT", "daemon.after_claim:2", 1);
  fault::arm_from_env();
  EXPECT_FALSE(fault::triggered("daemon.after_claim"));
  EXPECT_TRUE(fault::triggered("daemon.after_claim"));

  ::setenv("DROWSY_CRASH_AT", "not.a.point", 1);
  EXPECT_THROW(fault::arm_from_env(), dt::DistribError);
}

TEST_F(FaultFixture, DieExitsWithTheCrashCodeNamingThePoint) {
  EXPECT_EXIT(fault::die("daemon.after_claim"),
              ::testing::ExitedWithCode(fault::kCrashExitCode),
              "crash point daemon.after_claim triggered");
}

TEST_F(FaultFixture, CrashPointMacroKillsTheProcessExactlyOnTheNthPass) {
  if (!fault::compiled_in()) GTEST_SKIP() << "fault injection compiled out";
  EXPECT_EXIT(
      {
        fault::arm("daemon.mid_archive:2");
        DROWSY_CRASH_POINT("daemon.mid_archive");  // 1st pass: survives
        DROWSY_CRASH_POINT("daemon.mid_archive");  // 2nd pass: dies here
        std::exit(0);                              // never reached
      },
      ::testing::ExitedWithCode(fault::kCrashExitCode),
      "crash point daemon.mid_archive triggered");
}
