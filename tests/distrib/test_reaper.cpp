// Lease + reaper contract: expired claims return to the queue exactly
// once, journaled work survives the trip, live owners and races are
// never harmed, and the reap journal records every recovery.  Uses the
// real CI smoke sweep so "converges byte-identically" is checked against
// the actual single-process run, not a mock.
#include "distrib/reaper.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "distrib/daemon.hpp"
#include "distrib/journal.hpp"
#include "distrib/merge.hpp"
#include "distrib/shard_runner.hpp"
#include "expctl/runs_io.hpp"
#include "expctl/spec_io.hpp"
#include "scenario/registry.hpp"

namespace dt = drowsy::distrib;
namespace ec = drowsy::expctl;
namespace fs = std::filesystem;
namespace sc = drowsy::scenario;

namespace {

struct ReaperFixture : ::testing::Test {
  static const std::string& sweep_bytes() {
    static const std::string bytes =
        ec::read_file(std::string(DROWSY_SOURCE_DIR) + "/sweeps/ci_smoke.json");
    return bytes;
  }

  static std::vector<sc::BatchJob>& grid() {
    static std::vector<sc::BatchJob> jobs = [] {
      const ec::SweepSpec sweep = ec::sweep_from_json(ec::Json::parse(sweep_bytes()),
                                                      sc::ScenarioRegistry::builtin());
      return ec::expand(sweep);
    }();
    return jobs;
  }

  static std::vector<sc::RunResult>& reference() {
    static std::vector<sc::RunResult> results = [] {
      sc::BatchRunner runner(2);
      return runner.run(grid());
    }();
    return results;
  }

  static fs::path make_queue(const char* tag, std::size_t shard_count) {
    const fs::path root =
        fs::path(::testing::TempDir()) / (std::string("drowsy_reap_") + tag);
    fs::remove_all(root);
    fs::create_directories(root);
    ASSERT_TRUE_OR_THROW(sc::write_file((root / "ci_smoke.json").string(), sweep_bytes()));
    const auto plan = dt::plan_shards(grid(), shard_count, dt::ShardStrategy::Balanced);
    for (std::size_t s = 0; s < plan.size(); ++s) {
      dt::ShardManifest m;
      m.sweep_name = "ci-smoke";
      m.sweep_file = "ci_smoke.json";
      m.sweep_hash = ec::fnv1a64(sweep_bytes());
      m.shard_index = s;
      m.shard_count = shard_count;
      m.total_jobs = grid().size();
      m.job_indices = plan[s];
      const fs::path path = root / ("shard_" + std::to_string(s) + ".json");
      ASSERT_TRUE_OR_THROW(sc::write_file(path.string(), dt::to_json(m).dump()));
    }
    return root;
  }

  /// Move a pending manifest into claimed/<worker>/ with a 2-hour-old
  /// mtime: a worker that claimed and vanished.
  static fs::path park_claim(const fs::path& root, const std::string& worker,
                             const std::string& shard_name) {
    const fs::path claimed = root / "claimed" / worker;
    fs::create_directories(claimed);
    const fs::path manifest = claimed / (shard_name + ".json");
    fs::rename(root / (shard_name + ".json"), manifest);
    fs::last_write_time(manifest,
                        fs::file_time_type::clock::now() - std::chrono::hours(2));
    return manifest;
  }

  /// A lease whose renewal mtime is 2 hours stale: expired under any
  /// reasonable TTL.
  static void write_expired_lease(const fs::path& manifest, const std::string& worker,
                                  double ttl_s = 60.0) {
    dt::Lease lease;
    lease.worker_id = worker;
    lease.manifest = manifest.filename().string();
    lease.granted_unix_ms = 1;
    lease.renewed_unix_ms = 1;
    lease.ttl_s = ttl_s;
    const std::string path = dt::lease_path_for(manifest.string());
    dt::write_lease_file(path, lease);
    fs::last_write_time(path, fs::file_time_type::clock::now() - std::chrono::hours(2));
  }

  /// Execute a claimed manifest's full shard into its journal (the state
  /// of a worker that finished every row but never archived).
  static dt::ShardRunOutcome run_claimed_shard(const fs::path& manifest) {
    const dt::ShardManifest m =
        dt::manifest_from_json(ec::Json::parse(ec::read_file(manifest.string())));
    const fs::path journal =
        manifest.parent_path() / (manifest.stem().string() + ".journal.jsonl");
    return dt::run_shard(grid(), m, journal.string(), 2);
  }

  static dt::ReapOptions reap_options(const fs::path& root) {
    dt::ReapOptions opts;
    opts.queue_dir = root.string();
    opts.stale_after_s = 3600.0;
    opts.reaper_id = "test-reaper";
    return opts;
  }

  static void ASSERT_TRUE_OR_THROW(bool ok) {
    if (!ok) throw std::runtime_error("fixture setup failed");
  }
};

}  // namespace

TEST_F(ReaperFixture, LeaseJsonRoundTripsAndRejectsDrift) {
  dt::Lease lease;
  lease.worker_id = "w1";
  lease.manifest = "shard_0.json";
  lease.granted_unix_ms = 1700000000123ull;
  lease.renewed_unix_ms = 1700000000456ull;
  lease.ttl_s = 12.5;
  const dt::Lease back = dt::lease_from_json(dt::to_json(lease));
  EXPECT_EQ(back.worker_id, "w1");
  EXPECT_EQ(back.manifest, "shard_0.json");
  EXPECT_EQ(back.granted_unix_ms, 1700000000123ull);
  EXPECT_EQ(back.renewed_unix_ms, 1700000000456ull);
  EXPECT_DOUBLE_EQ(back.ttl_s, 12.5);

  ec::Json wrong_schema = dt::to_json(lease);
  wrong_schema.set("schema", "drowsy-claim-lease-v999");
  EXPECT_THROW(static_cast<void>(dt::lease_from_json(wrong_schema)), dt::DistribError);

  ec::Json zero_ttl = dt::to_json(lease);
  zero_ttl.set("ttl_s", 0.0);
  EXPECT_THROW(static_cast<void>(dt::lease_from_json(zero_ttl)), dt::DistribError);

  ec::Json extra = dt::to_json(lease);
  extra.set("surprise", true);
  EXPECT_THROW(static_cast<void>(dt::lease_from_json(extra)), dt::DistribError);

  EXPECT_EQ(dt::lease_path_for("/q/claimed/w1/shard_3.json"),
            "/q/claimed/w1/shard_3.lease.json");
}

TEST_F(ReaperFixture, LeaseFileWritesAtomicallyAndReadsBack) {
  const fs::path dir = fs::path(::testing::TempDir()) / "drowsy_lease_io";
  fs::remove_all(dir);
  fs::create_directories(dir);
  dt::Lease lease;
  lease.worker_id = "w1";
  lease.manifest = "shard_0.json";
  lease.granted_unix_ms = 42;
  lease.renewed_unix_ms = 43;
  lease.ttl_s = 5.0;
  const std::string path = (dir / "shard_0.lease.json").string();
  dt::write_lease_file(path, lease);
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "tmp must be renamed away";
  EXPECT_EQ(dt::read_lease_file(path).renewed_unix_ms, 43u);
  EXPECT_THROW(static_cast<void>(dt::read_lease_file((dir / "absent.json").string())),
               dt::DistribError);
}

TEST_F(ReaperFixture, ListClaimsResolvesLeaseHeartbeatAndMtimeEvidence) {
  const fs::path root = make_queue("evidence", 2);
  const fs::path leased = park_claim(root, "leased", "shard_0");
  const fs::path bare = park_claim(root, "bare", "shard_1");

  // A fresh lease: the claim reports headroom and is not expired even
  // though the manifest mtime is ancient.
  dt::Lease lease;
  lease.worker_id = "leased";
  lease.manifest = "shard_0.json";
  lease.granted_unix_ms = 1;
  lease.renewed_unix_ms = 1;
  lease.ttl_s = 3600.0;
  dt::write_lease_file(dt::lease_path_for(leased.string()), lease);

  auto claims = dt::list_claims(root.string());
  ASSERT_EQ(claims.size(), 2u);  // path order: bare < leased
  EXPECT_EQ(claims[0].worker_id, "bare");
  EXPECT_FALSE(claims[0].has_lease);
  EXPECT_FALSE(claims[0].from_snapshot);
  EXPECT_GE(claims[0].age_s, 3600.0);  // manifest-mtime fallback
  EXPECT_EQ(claims[1].worker_id, "leased");
  EXPECT_TRUE(claims[1].has_lease);
  EXPECT_DOUBLE_EQ(claims[1].lease_ttl_s, 3600.0);
  EXPECT_LT(claims[1].age_s, 60.0);  // lease file just written
  EXPECT_GT(claims[1].lease_remaining_s, 3500.0);
  EXPECT_FALSE(claims[1].expired(1.0)) << "live lease beats any threshold";
  EXPECT_TRUE(claims[0].expired(3600.0));

  // Expire the lease by back-dating its renewal: now the claim is stale
  // under its own TTL, regardless of the caller's threshold.
  fs::last_write_time(dt::lease_path_for(leased.string()),
                      fs::file_time_type::clock::now() - std::chrono::hours(2));
  claims = dt::list_claims(root.string());
  EXPECT_TRUE(claims[1].expired(1e9));
  EXPECT_LT(claims[1].lease_remaining_s, 0.0);

  // An unreadable lease degrades to the mtime fallback instead of hiding
  // the claim.
  ASSERT_TRUE(sc::write_file(dt::lease_path_for(leased.string()), "not json"));
  fs::last_write_time(leased, fs::file_time_type::clock::now() - std::chrono::hours(2));
  claims = dt::list_claims(root.string());
  ASSERT_EQ(claims.size(), 2u);
  EXPECT_FALSE(claims[1].has_lease);
  EXPECT_GE(claims[1].age_s, 3600.0);
}

// The ISSUE's acceptance test: kill a worker, advance past the lease
// TTL, and the reaper returns its task to the queue exactly once.
TEST_F(ReaperFixture, ExpiredClaimReturnsToTheQueueExactlyOnce) {
  const fs::path root = make_queue("once", 1);
  const fs::path manifest = park_claim(root, "deadworker", "shard_0");
  write_expired_lease(manifest, "deadworker");

  const dt::ReapOutcome first = dt::reap_queue(reap_options(root));
  EXPECT_EQ(first.examined, 1u);
  EXPECT_EQ(first.expired, 1u);
  EXPECT_EQ(first.reaped, 1u);
  EXPECT_TRUE(fs::exists(root / "shard_0.json")) << "manifest back in the queue";
  EXPECT_FALSE(fs::exists(manifest));
  EXPECT_FALSE(fs::exists(dt::lease_path_for(manifest.string())))
      << "dead lease cleaned up";

  // Idempotence: the claim is gone, so a second reap changes nothing.
  const dt::ReapOutcome second = dt::reap_queue(reap_options(root));
  EXPECT_EQ(second.examined, 0u);
  EXPECT_EQ(second.reaped, 0u);
  EXPECT_TRUE(fs::exists(root / "shard_0.json"));

  const auto reaps = dt::read_reap_journal(root.string());
  ASSERT_EQ(reaps.size(), 1u) << "exactly one reap on record";
  EXPECT_EQ(reaps[0].manifest, "shard_0.json");
  EXPECT_EQ(reaps[0].worker_id, "deadworker");
  EXPECT_EQ(reaps[0].reaper_id, "test-reaper");
  EXPECT_GE(reaps[0].age_s, 3600.0);
}

TEST_F(ReaperFixture, ReapPreservesTheJournalValidPrefix) {
  const fs::path root = make_queue("prefix", 1);
  const fs::path manifest = park_claim(root, "deadworker", "shard_0");
  // The dead worker journaled its whole shard (but never archived), then
  // a torn half-row landed at the tail as it died.
  const dt::ShardRunOutcome ran = run_claimed_shard(manifest);
  ASSERT_EQ(ran.executed, grid().size());
  const fs::path claimed_journal = manifest.parent_path() / "shard_0.journal.jsonl";
  {
    std::FILE* f = std::fopen(claimed_journal.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"index\":", f);  // torn tail, no newline
    std::fclose(f);
  }
  write_expired_lease(manifest, "deadworker");

  const dt::ReapOutcome outcome = dt::reap_queue(reap_options(root));
  EXPECT_EQ(outcome.reaped, 1u);
  EXPECT_EQ(outcome.rows_preserved, grid().size());
  EXPECT_FALSE(fs::exists(claimed_journal)) << "dead journal cleaned up";

  // The published snapshot resumes completely: nothing re-executed, and
  // the merge is byte-identical to the single-process run.
  const dt::JournalContents snapshot =
      dt::read_journal((root / "shard_0.journal.jsonl").string());
  EXPECT_EQ(snapshot.entries.size(), grid().size());
  EXPECT_FALSE(snapshot.truncated_tail) << "torn tail must not survive the reap";
  const auto merged = dt::merge_journals(grid(), snapshot.entries);
  EXPECT_EQ(sc::to_csv(merged), sc::to_csv(reference()));
}

TEST_F(ReaperFixture, LiveLeasesAndOwnClaimsAreNeverReaped) {
  const fs::path root = make_queue("skip", 2);
  const fs::path alive = park_claim(root, "alive", "shard_0");
  const fs::path mine = park_claim(root, "me", "shard_1");

  // A live lease protects shard_0 despite the ancient manifest mtime.
  dt::Lease lease;
  lease.worker_id = "alive";
  lease.manifest = "shard_0.json";
  lease.granted_unix_ms = 1;
  lease.renewed_unix_ms = 1;
  lease.ttl_s = 3600.0;
  dt::write_lease_file(dt::lease_path_for(alive.string()), lease);
  // shard_1 is expired, but it belongs to the caller (skip_worker).
  write_expired_lease(mine, "me");

  dt::ReapOptions opts = reap_options(root);
  opts.skip_worker = "me";
  const dt::ReapOutcome outcome = dt::reap_queue(opts);
  EXPECT_EQ(outcome.examined, 2u);
  EXPECT_EQ(outcome.expired, 0u) << "skip_worker claims are not even counted";
  EXPECT_EQ(outcome.reaped, 0u);
  EXPECT_TRUE(fs::exists(alive));
  EXPECT_TRUE(fs::exists(mine));
  EXPECT_TRUE(dt::read_reap_journal(root.string()).empty());
}

TEST_F(ReaperFixture, DryRunReportsWithoutChangingTheQueue) {
  const fs::path root = make_queue("dry", 1);
  const fs::path manifest = park_claim(root, "deadworker", "shard_0");
  write_expired_lease(manifest, "deadworker");

  dt::ReapOptions opts = reap_options(root);
  opts.dry_run = true;
  const dt::ReapOutcome outcome = dt::reap_queue(opts);
  EXPECT_EQ(outcome.expired, 1u);
  EXPECT_EQ(outcome.reaped, 1u) << "dry run reports what it would reap";
  EXPECT_TRUE(fs::exists(manifest)) << "claim untouched";
  EXPECT_TRUE(fs::exists(dt::lease_path_for(manifest.string())));
  EXPECT_FALSE(fs::exists(root / "shard_0.json"));
  EXPECT_TRUE(dt::read_reap_journal(root.string()).empty());
}

// The reap-vs-late-worker race, half one: a not-actually-dead owner
// still holds an open descriptor on its journal.  The reaper copies the
// valid prefix to a fresh inode, so the late append lands on the dead
// inode and the re-enqueued journal stays exactly the snapshot.
TEST_F(ReaperFixture, LateWorkerAppendsLandOnTheDeadInode) {
  const fs::path root = make_queue("inode", 1);
  const fs::path manifest = park_claim(root, "slowworker", "shard_0");
  static_cast<void>(run_claimed_shard(manifest));
  const fs::path claimed_journal = manifest.parent_path() / "shard_0.journal.jsonl";
  const dt::JournalContents before = dt::read_journal(claimed_journal.string());
  ASSERT_EQ(before.entries.size(), grid().size());
  write_expired_lease(manifest, "slowworker");

  // The late worker's writer, opened before the reap strikes.
  dt::JournalWriter late_writer(claimed_journal.string(), before.valid_bytes);
  const dt::ReapOutcome outcome = dt::reap_queue(reap_options(root));
  ASSERT_EQ(outcome.reaped, 1u);

  // The zombie appends once more — onto the unlinked inode.
  late_writer.append(before.entries.front());

  const dt::JournalContents published =
      dt::read_journal((root / "shard_0.journal.jsonl").string());
  EXPECT_EQ(published.entries.size(), grid().size())
      << "late append must not reach the re-enqueued journal";
  const auto merged = dt::merge_journals(grid(), published.entries);
  EXPECT_EQ(sc::to_csv(merged), sc::to_csv(reference()));
}

// The race, half two: the late worker finishes *after* its claim was
// reaped and re-executed, and archives its own journal over done/.  The
// duplicate is detectable (cover_grid counts it) and harmless: the CSV
// reduced from either complete journal is the canonical bytes.
TEST_F(ReaperFixture, LateArchiveAfterReExecutionKeepsTheCanonicalCsv) {
  const fs::path root = make_queue("race", 1);
  const fs::path manifest = park_claim(root, "slowworker", "shard_0");
  static_cast<void>(run_claimed_shard(manifest));
  const fs::path claimed_journal = manifest.parent_path() / "shard_0.journal.jsonl";
  const std::string late_copy = ec::read_file(claimed_journal.string());
  write_expired_lease(manifest, "slowworker");
  ASSERT_EQ(dt::reap_queue(reap_options(root)).reaped, 1u);

  // Force full re-execution by the new owner: drop the published
  // snapshot so its journal is fresh work, not an adopted byte-copy.
  fs::remove(root / "shard_0.journal.jsonl");
  dt::DaemonOptions daemon = {};
  daemon.queue_dir = root.string();
  daemon.worker_id = "w2";
  daemon.threads = 2;
  daemon.max_idle_s = 1.0;
  daemon.poll_ms = 25;
  const dt::DaemonOutcome ran = dt::run_daemon(daemon);
  ASSERT_EQ(ran.completed, 1u);
  const fs::path done_journal = root / "done" / "shard_0.journal.jsonl";
  const std::string csv_before = [&] {
    const auto rows = dt::read_journal(done_journal.string()).entries;
    return sc::to_csv(dt::merge_journals(grid(), rows));
  }();
  EXPECT_EQ(csv_before, sc::to_csv(reference()));

  // Concatenating both complete journals is a detected duplicate, never
  // a silent double-count.
  std::vector<dt::JournalEntry> both = dt::read_journal(done_journal.string()).entries;
  const auto late_rows = dt::read_journal(claimed_journal.string());  // gone: empty
  EXPECT_TRUE(late_rows.entries.empty());
  ASSERT_TRUE(sc::write_file((root / "late.journal.jsonl").string(), late_copy));
  const auto late = dt::read_journal((root / "late.journal.jsonl").string()).entries;
  both.insert(both.end(), late.begin(), late.end());
  const dt::Coverage cov = dt::cover_grid(grid(), both);
  EXPECT_FALSE(cov.duplicates.empty());
  EXPECT_THROW(static_cast<void>(dt::merge_journals(grid(), both)), dt::DistribError);

  // The late worker's archive replaces done/ wholesale (rename).  Its
  // journal is also complete, so the canonical CSV is unchanged.
  fs::rename(root / "late.journal.jsonl", done_journal);
  const auto rows = dt::read_journal(done_journal.string()).entries;
  EXPECT_EQ(sc::to_csv(dt::merge_journals(grid(), rows)), csv_before);
}

TEST_F(ReaperFixture, ReapJournalToleratesATornTail) {
  const fs::path root = make_queue("tornreap", 1);
  const fs::path manifest = park_claim(root, "deadworker", "shard_0");
  write_expired_lease(manifest, "deadworker");
  ASSERT_EQ(dt::reap_queue(reap_options(root)).reaped, 1u);

  // A reaper that died mid-append leaves half a row; history before the
  // tear is still served.
  const fs::path journal = root / "reaped" / "reap.journal.jsonl";
  std::FILE* f = std::fopen(journal.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"manifest\":\"sha", f);
  std::fclose(f);
  const auto reaps = dt::read_reap_journal(root.string());
  ASSERT_EQ(reaps.size(), 1u);
  EXPECT_EQ(reaps[0].manifest, "shard_0.json");

  // An empty or absent journal reads as empty history.
  EXPECT_TRUE(dt::read_reap_journal(
                  make_queue("tornreap_fresh", 1).string()).empty());
}
