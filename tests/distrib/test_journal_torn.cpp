// Property test for journal crash-tolerance: cut a real journal at
// EVERY byte boundary inside its last row and prove read_journal keeps
// exactly the complete rows, reports the torn tail, and that a
// JournalWriter resume at valid_bytes yields a clean journal with no
// lost and no duplicated rows.  A fault-injected variant produces the
// torn bytes the way a real crash does: dying mid-fwrite.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "distrib/fault.hpp"
#include "distrib/journal.hpp"
#include "distrib/merge.hpp"
#include "distrib/shard.hpp"
#include "distrib/shard_runner.hpp"
#include "expctl/runs_io.hpp"
#include "expctl/spec_io.hpp"
#include "scenario/registry.hpp"

namespace dt = drowsy::distrib;
namespace ec = drowsy::expctl;
namespace fault = drowsy::distrib::fault;
namespace fs = std::filesystem;
namespace sc = drowsy::scenario;

namespace {

struct JournalTornFixture : ::testing::Test {
  void SetUp() override { fault::disarm(); }
  void TearDown() override { fault::disarm(); }

  static const std::string& sweep_bytes() {
    static const std::string bytes =
        ec::read_file(std::string(DROWSY_SOURCE_DIR) + "/sweeps/ci_smoke.json");
    return bytes;
  }

  static std::vector<sc::BatchJob>& grid() {
    static std::vector<sc::BatchJob> jobs = [] {
      const ec::SweepSpec sweep = ec::sweep_from_json(ec::Json::parse(sweep_bytes()),
                                                      sc::ScenarioRegistry::builtin());
      return ec::expand(sweep);
    }();
    return jobs;
  }

  static dt::ShardManifest whole_grid_manifest() {
    dt::ShardManifest m;
    m.sweep_name = "ci-smoke";
    m.sweep_file = "ci_smoke.json";
    m.sweep_hash = ec::fnv1a64(sweep_bytes());
    m.shard_index = 0;
    m.shard_count = 1;
    m.total_jobs = grid().size();
    m.job_indices.resize(grid().size());
    for (std::size_t i = 0; i < grid().size(); ++i) m.job_indices[i] = i;
    return m;
  }

  /// The raw bytes of a complete, single-threaded (deterministic-order)
  /// journal over the whole ci_smoke grid.
  static const std::string& complete_journal_bytes() {
    static const std::string bytes = [] {
      const fs::path path =
          fs::path(::testing::TempDir()) / "drowsy_torn_master.journal.jsonl";
      fs::remove(path);
      static_cast<void>(
          dt::run_shard(grid(), whole_grid_manifest(), path.string(), 1));
      return ec::read_file(path.string());
    }();
    return bytes;
  }

  static fs::path scratch(const std::string& tag) {
    const fs::path dir = fs::path(::testing::TempDir()) / "drowsy_torn";
    fs::create_directories(dir);
    return dir / (tag + ".journal.jsonl");
  }

  /// Parse journal bytes by round-tripping through a scratch file.
  static dt::JournalContents parse_bytes(const std::string& bytes) {
    const fs::path path = scratch("parse_bytes");
    if (!sc::write_file(path.string(), bytes)) {
      throw std::runtime_error("fixture setup failed");
    }
    return dt::read_journal(path.string());
  }
};

}  // namespace

TEST_F(JournalTornFixture, EveryByteBoundaryOfTheLastRowReadsBack) {
  const std::string& bytes = complete_journal_bytes();
  ASSERT_FALSE(bytes.empty());
  ASSERT_EQ(bytes.back(), '\n');
  // Split off the last row (including its newline).
  const std::size_t prev_nl = bytes.find_last_of('\n', bytes.size() - 2);
  const std::size_t prefix_len = (prev_nl == std::string::npos) ? 0 : prev_nl + 1;
  const std::string prefix = bytes.substr(0, prefix_len);
  const std::string last_row = bytes.substr(prefix_len);
  ASSERT_GT(last_row.size(), 2u) << "fixture journal too small to cut";

  const dt::JournalContents whole = parse_bytes(bytes);
  const std::size_t n = whole.entries.size();
  ASSERT_EQ(n, grid().size());

  const fs::path path = scratch("every_cut");
  for (std::size_t cut = 0; cut <= last_row.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    ASSERT_TRUE(sc::write_file(path.string(), prefix + last_row.substr(0, cut)));

    const dt::JournalContents got = dt::read_journal(path.string());
    if (cut == last_row.size()) {
      // Uncut: everything reads back.
      EXPECT_EQ(got.entries.size(), n);
      EXPECT_FALSE(got.truncated_tail);
      EXPECT_EQ(got.valid_bytes, bytes.size());
    } else {
      // Any strictly partial tail (even zero bytes of it) must leave
      // exactly the first n-1 rows; a non-empty partial line is a torn
      // tail, an empty one is just a shorter journal.
      EXPECT_EQ(got.entries.size(), n - 1);
      EXPECT_EQ(got.truncated_tail, cut != 0);
      EXPECT_EQ(got.valid_bytes, prefix.size());
    }

    // Resume on top of the cut: open at valid_bytes, re-append the lost
    // row, and the journal must read back complete with no duplicates.
    {
      dt::JournalWriter writer(path.string(), got.valid_bytes);
      if (got.entries.size() < n) writer.append(whole.entries.back());
    }
    const dt::JournalContents resumed = dt::read_journal(path.string());
    ASSERT_EQ(resumed.entries.size(), n);
    EXPECT_FALSE(resumed.truncated_tail);
    const auto cov = dt::cover_grid(grid(), resumed.entries);
    EXPECT_TRUE(cov.complete());
    EXPECT_TRUE(cov.duplicates.empty());
    EXPECT_TRUE(cov.foreign.empty());
  }
}

TEST_F(JournalTornFixture, ResumeAfterEveryCutMatchesTheReferenceCsv) {
  // End-to-end flavour of the property: cut, then let run_shard itself
  // do the resume (truncate + re-run the torn job) instead of a manual
  // append.  Sampled cuts keep the runtime sane — run_shard re-executes
  // a real simulation per cut.
  const std::string& bytes = complete_journal_bytes();
  const std::size_t prev_nl = bytes.find_last_of('\n', bytes.size() - 2);
  const std::size_t prefix_len = (prev_nl == std::string::npos) ? 0 : prev_nl + 1;
  const std::string prefix = bytes.substr(0, prefix_len);
  const std::string last_row = bytes.substr(prefix_len);

  const std::string reference_csv = [&] {
    const dt::JournalContents whole = parse_bytes(bytes);
    return sc::to_csv(dt::merge_journals(grid(), whole.entries));
  }();

  const fs::path path = scratch("resume_cut");
  const std::vector<std::size_t> cuts = {0, 1, last_row.size() / 2,
                                         last_row.size() - 1};
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    ASSERT_TRUE(sc::write_file(path.string(), prefix + last_row.substr(0, cut)));
    const dt::ShardRunOutcome outcome =
        dt::run_shard(grid(), whole_grid_manifest(), path.string(), 1);
    EXPECT_EQ(outcome.resumed, grid().size() - 1);
    EXPECT_EQ(outcome.executed, 1u);
    const dt::JournalContents resumed = dt::read_journal(path.string());
    ASSERT_EQ(resumed.entries.size(), grid().size());
    EXPECT_EQ(sc::to_csv(dt::merge_journals(grid(), resumed.entries)),
              reference_csv);
  }
}

TEST_F(JournalTornFixture, FaultInjectedTornAppendIsDroppedOnResume) {
  if (!fault::compiled_in()) GTEST_SKIP() << "fault injection compiled out";
  // Die mid-fwrite on the 3rd append — the torn bytes come from the real
  // writer path, not from string surgery.
  const fs::path path = scratch("fault_torn");
  fs::remove(path);
  EXPECT_EXIT(
      {
        fault::arm("journal.torn_append:3");
        static_cast<void>(
            dt::run_shard(grid(), whole_grid_manifest(), path.string(), 1));
      },
      ::testing::ExitedWithCode(fault::kCrashExitCode),
      "crash point journal.torn_append triggered");

  const dt::JournalContents torn = dt::read_journal(path.string());
  EXPECT_EQ(torn.entries.size(), 2u) << "two clean rows precede the torn third";
  EXPECT_TRUE(torn.truncated_tail);

  // Clean resume: the torn job re-runs, nothing is lost or doubled.
  const dt::ShardRunOutcome outcome =
      dt::run_shard(grid(), whole_grid_manifest(), path.string(), 1);
  EXPECT_EQ(outcome.resumed, 2u);
  EXPECT_EQ(outcome.executed, grid().size() - 2);
  const dt::JournalContents resumed = dt::read_journal(path.string());
  ASSERT_EQ(resumed.entries.size(), grid().size());
  const auto cov = dt::cover_grid(grid(), resumed.entries);
  EXPECT_TRUE(cov.complete());
  EXPECT_TRUE(cov.duplicates.empty());
}
