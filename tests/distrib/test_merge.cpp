// End-to-end contract of the distrib subsystem, over the real CI smoke
// sweep: plan -> run shards (journaled) -> merge must reproduce the
// single-process pipeline byte for byte, including after a simulated
// crash-and-resume; merge must reject incomplete or mismatched journals.
#include "distrib/merge.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "distrib/shard_runner.hpp"
#include "expctl/report.hpp"
#include "expctl/runs_io.hpp"
#include "expctl/spec_io.hpp"
#include "scenario/registry.hpp"

namespace dt = drowsy::distrib;
namespace ec = drowsy::expctl;
namespace sc = drowsy::scenario;

namespace {

/// The expanded ci_smoke grid and the single-process reference results,
/// computed once (12 tiny runs) and shared by every test in this file.
struct SmokeFixture : ::testing::Test {
  static std::vector<sc::BatchJob>& grid() {
    static std::vector<sc::BatchJob> jobs = [] {
      const std::string path = std::string(DROWSY_SOURCE_DIR) + "/sweeps/ci_smoke.json";
      const ec::SweepSpec sweep = ec::sweep_from_json(
          ec::Json::parse(ec::read_file(path)), sc::ScenarioRegistry::builtin());
      return ec::expand(sweep);
    }();
    return jobs;
  }

  static std::vector<sc::RunResult>& reference() {
    static std::vector<sc::RunResult> results = [] {
      sc::BatchRunner runner(2);
      return runner.run(grid());
    }();
    return results;
  }

  static std::string temp_journal(const char* name) {
    const std::string path = ::testing::TempDir() + "drowsy_merge_" + name;
    std::remove(path.c_str());
    return path;
  }

  static dt::ShardManifest manifest_for(const std::vector<std::size_t>& indices,
                                        std::size_t shard_index, std::size_t shard_count) {
    dt::ShardManifest m;
    m.sweep_name = "ci-smoke";
    m.shard_index = shard_index;
    m.shard_count = shard_count;
    m.total_jobs = grid().size();
    m.job_indices = indices;
    return m;
  }

  /// plan + run every shard into temp journals, returning all entries.
  static std::vector<dt::JournalEntry> run_sharded(dt::ShardStrategy strategy,
                                                   std::size_t shard_count,
                                                   const char* tag) {
    const auto plan = dt::plan_shards(grid(), shard_count, strategy);
    std::vector<dt::JournalEntry> entries;
    for (std::size_t s = 0; s < plan.size(); ++s) {
      const std::string path =
          temp_journal((std::string(tag) + "_" + std::to_string(s) + ".jsonl").c_str());
      const dt::ShardRunOutcome outcome =
          dt::run_shard(grid(), manifest_for(plan[s], s, shard_count), path, 2);
      EXPECT_EQ(outcome.executed, plan[s].size());
      EXPECT_EQ(outcome.resumed, 0u);
      const dt::JournalContents contents = dt::read_journal(path);
      entries.insert(entries.end(), contents.entries.begin(), contents.entries.end());
    }
    return entries;
  }
};

}  // namespace

TEST_F(SmokeFixture, ShardedMergeIsByteIdenticalToSingleProcess) {
  const auto entries = run_sharded(dt::ShardStrategy::Balanced, 3, "identity");
  const auto merged = dt::merge_journals(grid(), entries);

  // The per-run, per-stat and per-verdict CSVs — the artifacts users
  // diff — must match the single-process pipeline byte for byte.
  EXPECT_EQ(sc::to_csv(merged), sc::to_csv(reference()));
  EXPECT_EQ(ec::to_csv(ec::summarize(merged)), ec::to_csv(ec::summarize(reference())));
  EXPECT_EQ(ec::to_csv(ec::compare_policies(merged)),
            ec::to_csv(ec::compare_policies(reference())));
}

TEST_F(SmokeFixture, ResumeAfterTruncatedJournalConvergesByteIdentically) {
  // One shard owning the whole grid: run it, tear its journal mid-row,
  // then resume.  Completed jobs must be skipped and the merged output
  // must still match the reference exactly.
  const auto plan = dt::plan_shards(grid(), 1, dt::ShardStrategy::Contiguous);
  const dt::ShardManifest manifest = manifest_for(plan[0], 0, 1);
  const std::string path = temp_journal("resume.jsonl");
  static_cast<void>(dt::run_shard(grid(), manifest, path, 2));

  // Keep 5 complete rows plus a torn prefix of the 6th.
  const dt::JournalContents full = dt::read_journal(path);
  ASSERT_EQ(full.entries.size(), grid().size());
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
    std::fclose(f);
  }
  std::size_t offset = 0;
  for (int i = 0; i < 5; ++i) offset = text.find('\n', offset) + 1;
  const std::string torn = text.substr(0, offset + 40);  // 5 rows + partial 6th
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(torn.data(), 1, torn.size(), f), torn.size());
    std::fclose(f);
  }

  const dt::ShardRunOutcome outcome = dt::run_shard(grid(), manifest, path, 2);
  EXPECT_EQ(outcome.resumed, 5u);
  EXPECT_EQ(outcome.executed, grid().size() - 5);

  const dt::JournalContents resumed = dt::read_journal(path);
  ASSERT_EQ(resumed.entries.size(), grid().size());
  EXPECT_FALSE(resumed.truncated_tail);
  const auto merged = dt::merge_journals(grid(), resumed.entries);
  EXPECT_EQ(sc::to_csv(merged), sc::to_csv(reference()));
}

TEST_F(SmokeFixture, MixedSchemaJournalResumesAndMergesByteIdentically) {
  // A journal started by a pre-wall_ms binary and finished by this one:
  // the old rows must count as completed work on resume, the new rows
  // carry measurements, and the merge must not care either way.
  const auto plan = dt::plan_shards(grid(), 1, dt::ShardStrategy::Contiguous);
  const dt::ShardManifest manifest = manifest_for(plan[0], 0, 1);
  const std::string path = temp_journal("mixed_schema.jsonl");
  const auto keys = dt::job_keys(grid());
  {
    dt::JournalWriter writer(path, 0);
    for (std::size_t i = 0; i < 5; ++i) {
      dt::JournalEntry old_row;  // wall_ms unset: the old row shape
      old_row.index = i;
      old_row.key = keys[i];
      old_row.result = reference()[i];
      writer.append(old_row);
    }
  }

  const dt::ShardRunOutcome outcome = dt::run_shard(grid(), manifest, path, 2);
  EXPECT_EQ(outcome.resumed, 5u);
  EXPECT_EQ(outcome.executed, grid().size() - 5);

  const dt::JournalContents resumed = dt::read_journal(path);
  ASSERT_EQ(resumed.entries.size(), grid().size());
  for (std::size_t i = 0; i < resumed.entries.size(); ++i) {
    EXPECT_EQ(resumed.entries[i].has_wall_ms(), i >= 5) << "row " << i;
  }
  const auto merged = dt::merge_journals(grid(), resumed.entries);
  EXPECT_EQ(sc::to_csv(merged), sc::to_csv(reference()));
}

TEST_F(SmokeFixture, ResumeAccountsDuplicateJobKeysPerSlot) {
  // A grid may hold the same (spec, policy, seed) in two slots (a sweep
  // listing one scenario twice).  Resume must count journal rows per
  // slot, not per key — a key-set would mark both slots done off a
  // single row and strand the second job forever.
  const std::vector<sc::BatchJob> dup_grid = {grid()[0], grid()[0]};
  dt::ShardManifest m;
  m.sweep_name = "dup";
  m.total_jobs = 2;
  m.job_indices = {0, 1};
  const std::string path = temp_journal("dupkeys.jsonl");

  const dt::ShardRunOutcome first = dt::run_shard(dup_grid, m, path, 2);
  EXPECT_EQ(first.executed, 2u);

  // Cut the journal back to one row: exactly one of the two slots done.
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
    std::fclose(f);
  }
  const std::string one_row = text.substr(0, text.find('\n') + 1);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(one_row.data(), 1, one_row.size(), f), one_row.size());
    std::fclose(f);
  }

  const dt::ShardRunOutcome second = dt::run_shard(dup_grid, m, path, 2);
  EXPECT_EQ(second.resumed, 1u);
  EXPECT_EQ(second.executed, 1u);

  // Fully journaled: idempotent, and no spurious "duplicate rows" error.
  const dt::ShardRunOutcome third = dt::run_shard(dup_grid, m, path, 2);
  EXPECT_EQ(third.resumed, 2u);
  EXPECT_EQ(third.executed, 0u);
  EXPECT_EQ(dt::merge_journals(dup_grid, dt::read_journal(path).entries).size(), 2u);
}

TEST_F(SmokeFixture, RunShardIsIdempotentOnceComplete) {
  const auto plan = dt::plan_shards(grid(), 2, dt::ShardStrategy::Strided);
  const dt::ShardManifest manifest = manifest_for(plan[0], 0, 2);
  const std::string path = temp_journal("idempotent.jsonl");
  static_cast<void>(dt::run_shard(grid(), manifest, path, 2));
  const std::size_t size_before = dt::read_journal(path).valid_bytes;

  const dt::ShardRunOutcome again = dt::run_shard(grid(), manifest, path, 2);
  EXPECT_EQ(again.resumed, plan[0].size());
  EXPECT_EQ(again.executed, 0u);
  EXPECT_EQ(dt::read_journal(path).valid_bytes, size_before);
}

TEST_F(SmokeFixture, MergeRejectsMissingDuplicateAndForeignRows) {
  const auto entries = run_sharded(dt::ShardStrategy::Strided, 2, "reject");
  ASSERT_EQ(entries.size(), grid().size());

  // Missing: drop one row.
  std::vector<dt::JournalEntry> missing(entries.begin(), entries.end() - 1);
  try {
    static_cast<void>(dt::merge_journals(grid(), missing));
    FAIL() << "merge must reject an uncovered grid";
  } catch (const dt::DistribError& e) {
    EXPECT_NE(std::string(e.what()).find("no journal row"), std::string::npos);
  }

  // Duplicate: the same row twice.
  std::vector<dt::JournalEntry> duplicated = entries;
  duplicated.push_back(entries.front());
  EXPECT_THROW(static_cast<void>(dt::merge_journals(grid(), duplicated)),
               dt::DistribError);

  // Foreign: a row whose spec hash matches no grid job.
  std::vector<dt::JournalEntry> foreign = entries;
  foreign.back().key.spec_hash ^= 1;
  EXPECT_THROW(static_cast<void>(dt::merge_journals(grid(), foreign)), dt::DistribError);

  // Key-consistent but payload-tampered: the embedded result's scenario
  // disagrees with the matched grid slot — rejected, not merged.
  std::vector<dt::JournalEntry> tampered = entries;
  tampered.back().result.scenario = "impostor";
  EXPECT_THROW(static_cast<void>(dt::merge_journals(grid(), tampered)),
               dt::DistribError);

  // Untouched entries still merge (the fixtures above didn't mutate them).
  EXPECT_EQ(dt::merge_journals(grid(), entries).size(), grid().size());
}

TEST_F(SmokeFixture, CoverageCountsForStatus) {
  const auto plan = dt::plan_shards(grid(), 3, dt::ShardStrategy::Balanced);
  const std::string path = temp_journal("status.jsonl");
  static_cast<void>(dt::run_shard(grid(), manifest_for(plan[1], 1, 3), path, 2));
  const dt::JournalContents contents = dt::read_journal(path);

  const dt::Coverage cov = dt::cover_grid(grid(), contents.entries);
  EXPECT_EQ(cov.total, grid().size());
  EXPECT_EQ(cov.completed, plan[1].size());
  EXPECT_EQ(cov.missing.size(), grid().size() - plan[1].size());
  EXPECT_TRUE(cov.duplicates.empty());
  EXPECT_TRUE(cov.foreign.empty());
  EXPECT_FALSE(cov.complete());
}
