// The chaos harness: kill the worker at every registered crash point
// (and with a real SIGKILL), then prove the fabric converges — reap or
// resume, the merged CSV must be byte-identical to the single-process
// run.  gtest death tests are the kill mechanism: the victim runs in a
// forked child whose exit code and stderr are asserted, while its
// on-disk damage persists for the parent to recover from.
#include <gtest/gtest.h>

#include <csignal>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "distrib/daemon.hpp"
#include "distrib/fault.hpp"
#include "distrib/journal.hpp"
#include "distrib/merge.hpp"
#include "distrib/reaper.hpp"
#include "distrib/shard_runner.hpp"
#include "expctl/runs_io.hpp"
#include "expctl/spec_io.hpp"
#include "scenario/registry.hpp"

namespace dt = drowsy::distrib;
namespace ec = drowsy::expctl;
namespace fault = drowsy::distrib::fault;
namespace fs = std::filesystem;
namespace sc = drowsy::scenario;

namespace {

struct ChaosFixture : ::testing::Test {
  void SetUp() override { fault::disarm(); }
  void TearDown() override { fault::disarm(); }

  static const std::string& sweep_bytes() {
    static const std::string bytes =
        ec::read_file(std::string(DROWSY_SOURCE_DIR) + "/sweeps/ci_smoke.json");
    return bytes;
  }

  static std::vector<sc::BatchJob>& grid() {
    static std::vector<sc::BatchJob> jobs = [] {
      const ec::SweepSpec sweep = ec::sweep_from_json(ec::Json::parse(sweep_bytes()),
                                                      sc::ScenarioRegistry::builtin());
      return ec::expand(sweep);
    }();
    return jobs;
  }

  static const std::string& reference_csv() {
    static const std::string csv = [] {
      sc::BatchRunner runner(2);
      return sc::to_csv(runner.run(grid()));
    }();
    return csv;
  }

  static fs::path make_queue(const std::string& tag) {
    const fs::path root = fs::path(::testing::TempDir()) / ("drowsy_chaos_" + tag);
    fs::remove_all(root);
    fs::create_directories(root);
    if (!sc::write_file((root / "ci_smoke.json").string(), sweep_bytes())) {
      throw std::runtime_error("fixture setup failed");
    }
    dt::ShardManifest m;
    m.sweep_name = "ci-smoke";
    m.sweep_file = "ci_smoke.json";
    m.sweep_hash = ec::fnv1a64(sweep_bytes());
    m.shard_index = 0;
    m.shard_count = 1;
    m.total_jobs = grid().size();
    m.job_indices.resize(grid().size());
    for (std::size_t i = 0; i < grid().size(); ++i) m.job_indices[i] = i;
    if (!sc::write_file((root / "shard_0.json").string(), dt::to_json(m).dump())) {
      throw std::runtime_error("fixture setup failed");
    }
    return root;
  }

  static dt::DaemonOptions daemon_options(const fs::path& root,
                                          const std::string& worker) {
    dt::DaemonOptions opts;
    opts.queue_dir = root.string();
    opts.worker_id = worker;
    opts.threads = 2;
    opts.max_idle_s = 1.0;
    opts.poll_ms = 25;
    return opts;
  }

  /// The convergence oracle: after whatever carnage, a clean daemon run
  /// as `worker` must finish the queue and the merged journal must be
  /// the single-process bytes.
  static void assert_converges(const fs::path& root, const std::string& worker) {
    fault::disarm();
    const dt::DaemonOutcome outcome = dt::run_daemon(daemon_options(root, worker));
    EXPECT_EQ(outcome.failed, 0u);
    const dt::JournalContents done =
        dt::read_journal((root / "done" / "shard_0.journal.jsonl").string());
    ASSERT_EQ(done.entries.size(), grid().size());
    const auto merged = dt::merge_journals(grid(), done.entries);
    EXPECT_EQ(sc::to_csv(merged), reference_csv());
    EXPECT_TRUE(fs::exists(root / "done" / "shard_0.json"));
    EXPECT_FALSE(fs::exists(root / "shard_0.json"));
  }

  /// Park shard_0 under a dead worker with a full journal and an expired
  /// lease — the reaper's canonical prey.
  static fs::path park_dead_claim(const fs::path& root, bool with_journal) {
    const fs::path claimed = root / "claimed" / "deadworker";
    fs::create_directories(claimed);
    const fs::path manifest = claimed / "shard_0.json";
    fs::rename(root / "shard_0.json", manifest);
    fs::last_write_time(manifest,
                        fs::file_time_type::clock::now() - std::chrono::hours(2));
    if (with_journal) {
      const dt::ShardManifest m =
          dt::manifest_from_json(ec::Json::parse(ec::read_file(manifest.string())));
      static_cast<void>(dt::run_shard(grid(), m,
                                      (claimed / "shard_0.journal.jsonl").string(), 2));
    }
    dt::Lease lease;
    lease.worker_id = "deadworker";
    lease.manifest = "shard_0.json";
    lease.granted_unix_ms = 1;
    lease.renewed_unix_ms = 1;
    lease.ttl_s = 60.0;
    const std::string lease_path = dt::lease_path_for(manifest.string());
    dt::write_lease_file(lease_path, lease);
    fs::last_write_time(lease_path,
                        fs::file_time_type::clock::now() - std::chrono::hours(2));
    return manifest;
  }

  static dt::ReapOptions reap_options(const fs::path& root) {
    dt::ReapOptions opts;
    opts.queue_dir = root.string();
    opts.stale_after_s = 3600.0;
    opts.reaper_id = "chaos-reaper";
    return opts;
  }
};

}  // namespace

// Worker-side crash points: die there, restart the same worker, resume,
// converge byte-identically.  Every point is exercised in catalogue
// order so a newly added point cannot dodge the harness silently.
TEST_F(ChaosFixture, EveryDaemonCrashPointRecoversByResume) {
  if (!fault::compiled_in()) GTEST_SKIP() << "fault injection compiled out";
  const std::vector<std::string> points = {
      "daemon.after_claim",   "daemon.after_lease",   "journal.after_append",
      "journal.torn_append",  "daemon.before_archive", "daemon.mid_archive",
  };
  for (const std::string& point : points) {
    SCOPED_TRACE(point);
    const fs::path root = make_queue("d_" + point);
    EXPECT_EXIT(
        {
          fault::arm(point);
          static_cast<void>(dt::run_daemon(daemon_options(root, "w1")));
        },
        ::testing::ExitedWithCode(fault::kCrashExitCode),
        "crash point " + point + " triggered");

    // The kill really happened mid-protocol: the task is not archived
    // as complete-and-pending simultaneously, and a torn append left a
    // genuinely torn tail for resume to drop.
    EXPECT_TRUE(fs::exists(root / "claimed" / "w1" / "shard_0.json"))
        << "victim died owning its claim";
    if (point == "journal.torn_append") {
      const dt::JournalContents torn = dt::read_journal(
          (root / "claimed" / "w1" / "shard_0.journal.jsonl").string());
      EXPECT_TRUE(torn.truncated_tail) << "half-written row must be on disk";
    }
    assert_converges(root, "w1");
  }
}

// A real SIGKILL (no crash-point cooperation, no cleanup of any kind)
// immediately after claiming: the restart-resume path converges.
TEST_F(ChaosFixture, SigkillAfterClaimRecoversByResume) {
  const fs::path root = make_queue("sigkill");
  EXPECT_EXIT(
      {
        dt::DaemonOptions opts = daemon_options(root, "w1");
        opts.on_event = [](const std::string& line) {
          if (line.rfind("claimed", 0) == 0) ::raise(SIGKILL);
        };
        static_cast<void>(dt::run_daemon(opts));
      },
      ::testing::KilledBySignal(SIGKILL), "");
  EXPECT_TRUE(fs::exists(root / "claimed" / "w1" / "shard_0.json"));
  assert_converges(root, "w1");
}

// Reaper-side crash points: die inside the reap, re-reap (or not — the
// commit may already have happened), drain with a fresh worker,
// converge.  The commit rename keeps "exactly once" through every cut:
// at no instant does the manifest exist both pending and claimed.
TEST_F(ChaosFixture, EveryReaperCrashPointConvergesExactlyOnce) {
  if (!fault::compiled_in()) GTEST_SKIP() << "fault injection compiled out";
  const std::vector<std::string> points = {
      "reaper.before_commit", "reaper.after_commit", "reaper.after_journal"};
  for (const std::string& point : points) {
    SCOPED_TRACE(point);
    const fs::path root = make_queue("r_" + point);
    const fs::path parked = park_dead_claim(root, /*with_journal=*/true);
    EXPECT_EXIT(
        {
          fault::arm(point);
          static_cast<void>(dt::reap_queue(reap_options(root)));
        },
        ::testing::ExitedWithCode(fault::kCrashExitCode),
        "crash point " + point + " triggered");

    // Never both pending and claimed — the rename is atomic.
    const bool pending = fs::exists(root / "shard_0.json");
    const bool claimed = fs::exists(parked);
    EXPECT_NE(pending, claimed) << "manifest must exist in exactly one place";
    EXPECT_EQ(pending, point != "reaper.before_commit")
        << "commit happens exactly at the commit rename";

    // A second reaper finishes (or finds nothing left to do)...
    fault::disarm();
    const dt::ReapOutcome again = dt::reap_queue(reap_options(root));
    EXPECT_EQ(again.reaped, point == "reaper.before_commit" ? 1u : 0u);
    EXPECT_TRUE(fs::exists(root / "shard_0.json"));
    // ...and a fresh worker drains the queue byte-identically.
    assert_converges(root, "w2");
  }
}

// daemon.after_adopt: the new owner dies the instant it adopts the
// reaped journal snapshot.  Restart-resume picks the adopted rows up
// from its own claimed/ directory.
TEST_F(ChaosFixture, AdoptionCrashRecoversWithTheAdoptedRows) {
  if (!fault::compiled_in()) GTEST_SKIP() << "fault injection compiled out";
  const fs::path root = make_queue("adopt");
  park_dead_claim(root, /*with_journal=*/true);
  const dt::ReapOutcome reaped = dt::reap_queue(reap_options(root));
  ASSERT_EQ(reaped.reaped, 1u);
  ASSERT_EQ(reaped.rows_preserved, grid().size());
  ASSERT_TRUE(fs::exists(root / "shard_0.journal.jsonl"));

  EXPECT_EXIT(
      {
        fault::arm("daemon.after_adopt");
        static_cast<void>(dt::run_daemon(daemon_options(root, "w2")));
      },
      ::testing::ExitedWithCode(fault::kCrashExitCode),
      "crash point daemon.after_adopt triggered");
  // The snapshot moved into the victim's claimed/ directory with it.
  EXPECT_TRUE(fs::exists(root / "claimed" / "w2" / "shard_0.journal.jsonl"));
  EXPECT_FALSE(fs::exists(root / "shard_0.journal.jsonl"));
  assert_converges(root, "w2");
}

// The full loop without any crash-point cooperation: dead worker,
// opportunistic reap by an idle daemon, adoption, convergence — the
// ROADMAP's "kill -9 any worker, the sweep still converges".
TEST_F(ChaosFixture, IdleDaemonReapsAdoptsAndConverges) {
  const fs::path root = make_queue("full_loop");
  park_dead_claim(root, /*with_journal=*/true);
  dt::DaemonOptions opts = daemon_options(root, "w2");
  const dt::DaemonOutcome outcome = dt::run_daemon(opts);
  EXPECT_EQ(outcome.reaped, 1u);
  EXPECT_EQ(outcome.completed, 1u);
  EXPECT_EQ(outcome.failed, 0u);
  const dt::JournalContents done =
      dt::read_journal((root / "done" / "shard_0.journal.jsonl").string());
  ASSERT_EQ(done.entries.size(), grid().size());
  EXPECT_EQ(sc::to_csv(dt::merge_journals(grid(), done.entries)), reference_csv());
  const auto reaps = dt::read_reap_journal(root.string());
  ASSERT_EQ(reaps.size(), 1u);
  EXPECT_EQ(reaps[0].reaper_id, "w2");
  EXPECT_EQ(reaps[0].rows_preserved, grid().size());
}
