#include "distrib/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "expctl/runs_io.hpp"
#include "scenario/registry.hpp"

namespace dt = drowsy::distrib;
namespace ec = drowsy::expctl;
namespace sc = drowsy::scenario;

namespace {

/// A grid whose jobs have wildly different costs: fleet sizes 1..n VMs
/// and durations 1..n days.
std::vector<sc::BatchJob> uneven_grid(int n) {
  std::vector<sc::BatchJob> jobs;
  for (int i = 1; i <= n; ++i) {
    sc::ScenarioSpec spec;
    spec.name = "uneven" + std::to_string(i);
    spec.hosts = i;
    spec.vms.push_back(sc::VmGroup{"v", 0, i, 2, 2048, sc::TraceSpec{}, false});
    spec.duration_days = i;
    jobs.push_back(sc::BatchJob{spec, sc::Policy::DrowsyDc, static_cast<std::uint64_t>(i)});
  }
  return jobs;
}

/// Every index in exactly one shard.
void expect_partition(const std::vector<std::vector<std::size_t>>& shards, std::size_t n) {
  std::vector<int> seen(n, 0);
  for (const auto& shard : shards) {
    for (std::size_t prev = 0, k = 0; k < shard.size(); ++k) {
      ASSERT_LT(shard[k], n);
      if (k > 0) {
        EXPECT_GT(shard[k], prev) << "indices must ascend within a shard";
      }
      prev = shard[k];
      ++seen[shard[k]];
    }
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(seen[i], 1) << "index " << i;
}

}  // namespace

TEST(Shard, StrategiesPartitionTheGrid) {
  const auto jobs = uneven_grid(11);
  for (const auto strategy : {dt::ShardStrategy::Contiguous, dt::ShardStrategy::Strided,
                              dt::ShardStrategy::Balanced}) {
    for (const std::size_t shards : {1u, 3u, 4u, 16u}) {
      const auto plan = dt::plan_shards(jobs, shards, strategy);
      ASSERT_EQ(plan.size(), shards) << dt::to_string(strategy);
      expect_partition(plan, jobs.size());
    }
  }
  EXPECT_THROW(static_cast<void>(dt::plan_shards(jobs, 0, dt::ShardStrategy::Contiguous)),
               dt::DistribError);
}

TEST(Shard, ContiguousAndStridedShapes) {
  const auto jobs = uneven_grid(7);
  const auto contiguous = dt::plan_shards(jobs, 3, dt::ShardStrategy::Contiguous);
  EXPECT_EQ(contiguous[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(contiguous[1], (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(contiguous[2], (std::vector<std::size_t>{5, 6}));
  const auto strided = dt::plan_shards(jobs, 3, dt::ShardStrategy::Strided);
  EXPECT_EQ(strided[0], (std::vector<std::size_t>{0, 3, 6}));
  EXPECT_EQ(strided[1], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(strided[2], (std::vector<std::size_t>{2, 5}));
}

TEST(Shard, BalancedEvensOutEstimatedCost) {
  const auto jobs = uneven_grid(12);
  const auto plan = dt::plan_shards(jobs, 3, dt::ShardStrategy::Balanced);
  std::vector<double> load;
  double total = 0.0;
  for (const auto& shard : plan) {
    double cost = 0.0;
    for (const std::size_t i : shard) cost += dt::estimate_job_cost(jobs[i]);
    load.push_back(cost);
    total += cost;
  }
  const double target = total / 3.0;
  // Contiguous on this grid puts all the fat jobs in the last shard
  // (~2.1x the mean); balanced LPT must stay close to the mean.
  for (const double cost : load) {
    EXPECT_GT(cost, 0.6 * target);
    EXPECT_LT(cost, 1.4 * target);
  }
  // Determinism: planning twice yields the identical layout.
  EXPECT_EQ(dt::plan_shards(jobs, 3, dt::ShardStrategy::Balanced), plan);
}

TEST(Shard, CallerCostsDriveBalancedPlanning) {
  const auto jobs = uneven_grid(12);
  // Invert the static ordering: the "small" jobs are the expensive ones.
  std::vector<double> costs(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    costs[i] = 1.0 + dt::estimate_job_cost(jobs[jobs.size() - 1 - i]);
  }
  const auto plan = dt::plan_shards(jobs, 3, dt::ShardStrategy::Balanced, costs);
  expect_partition(plan, jobs.size());

  const std::vector<double> totals = dt::shard_costs(plan, costs);
  double total = 0.0;
  for (const double c : totals) total += c;
  for (const double c : totals) {
    EXPECT_GT(c, 0.6 * total / 3.0);
    EXPECT_LT(c, 1.4 * total / 3.0);
  }
  // The caller's costs, not the heuristic, must shape the layout.
  EXPECT_NE(plan, dt::plan_shards(jobs, 3, dt::ShardStrategy::Balanced));

  const std::vector<double> wrong_size(jobs.size() - 1, 1.0);
  EXPECT_THROW(
      static_cast<void>(dt::plan_shards(jobs, 3, dt::ShardStrategy::Balanced, wrong_size)),
      dt::DistribError);
}

TEST(Shard, ShardCostsAndSpread) {
  EXPECT_DOUBLE_EQ(dt::cost_spread({2.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(dt::cost_spread({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(dt::cost_spread({}), 1.0);
  EXPECT_TRUE(std::isinf(dt::cost_spread({1.0, 0.0})));

  const std::vector<std::vector<std::size_t>> plan = {{0, 2}, {1}};
  const std::vector<double> totals = dt::shard_costs(plan, {1.0, 10.0, 100.0});
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_DOUBLE_EQ(totals[0], 101.0);
  EXPECT_DOUBLE_EQ(totals[1], 10.0);
  EXPECT_THROW(static_cast<void>(dt::shard_costs({{3}}, {1.0, 2.0})), dt::DistribError);
}

TEST(Shard, JobKeysMatchPerJobHashing) {
  const auto& registry = sc::ScenarioRegistry::builtin();
  std::vector<sc::BatchJob> jobs = sc::cross(
      {*registry.find("paper-testbed"), *registry.find("dev-fleet-idle")},
      {sc::Policy::DrowsyDc, sc::Policy::Oasis}, 2);
  const auto keys = dt::job_keys(jobs);
  ASSERT_EQ(keys.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_TRUE(keys[i] == dt::job_key(jobs[i])) << i;
  }
  // Distinct (spec, policy, seed) triples get distinct encodings.
  std::vector<std::string> encoded;
  for (const auto& k : keys) encoded.push_back(k.encode());
  std::sort(encoded.begin(), encoded.end());
  EXPECT_EQ(std::adjacent_find(encoded.begin(), encoded.end()), encoded.end());
}

TEST(Shard, ManifestRoundTripAndValidation) {
  dt::ShardManifest m;
  m.sweep_name = "catalogue";
  m.sweep_file = "sweeps/catalogue.json";
  m.sweep_hash = ec::fnv1a64("file-bytes");
  m.shard_index = 1;
  m.shard_count = 3;
  m.strategy = dt::ShardStrategy::Strided;
  m.total_jobs = 9;
  m.job_indices = {1, 4, 7};

  const ec::Json j = dt::to_json(m);
  const dt::ShardManifest back = dt::manifest_from_json(j);
  EXPECT_EQ(back.sweep_name, m.sweep_name);
  EXPECT_EQ(back.sweep_hash, m.sweep_hash);
  EXPECT_EQ(back.shard_index, 1u);
  EXPECT_EQ(back.strategy, dt::ShardStrategy::Strided);
  EXPECT_EQ(back.job_indices, m.job_indices);
  EXPECT_EQ(dt::to_json(back).dump(), j.dump());

  // The run-time guards: edited sweep bytes, wrong grid size, bad index.
  EXPECT_NO_THROW(dt::validate_manifest(m, "file-bytes", 9));
  EXPECT_THROW(dt::validate_manifest(m, "edited-bytes", 9), dt::DistribError);
  EXPECT_THROW(dt::validate_manifest(m, "file-bytes", 12), dt::DistribError);
  dt::ShardManifest oob = m;
  oob.job_indices = {1, 4, 9};
  EXPECT_THROW(dt::validate_manifest(oob, "file-bytes", 9), dt::DistribError);
}

TEST(Shard, ManifestParseIsStrict) {
  dt::ShardManifest m;
  m.sweep_name = "s";
  m.total_jobs = 2;
  m.job_indices = {0, 1};
  ec::Json j = dt::to_json(m);
  j.set("extra", 1);
  EXPECT_THROW(static_cast<void>(dt::manifest_from_json(j)), dt::DistribError);

  ec::Json unsorted = dt::to_json(m);
  ec::Json indices = ec::Json::array();
  indices.push_back(std::uint64_t{1});
  indices.push_back(std::uint64_t{0});
  unsorted.set("job_indices", std::move(indices));
  EXPECT_THROW(static_cast<void>(dt::manifest_from_json(unsorted)), dt::DistribError);

  EXPECT_THROW(static_cast<void>(dt::shard_strategy_from_string("diagonal")),
               dt::DistribError);
}
