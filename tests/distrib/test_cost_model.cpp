// CostModel contract: measured prices where the journals have evidence,
// graceful fallback to scenario-level means and the calibrated static
// heuristic elsewhere — and measured-cost planning must balance the real
// paper catalogue at least as well as the static heuristic it replaces.
#include "distrib/cost_model.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "expctl/runs_io.hpp"
#include "expctl/spec_io.hpp"
#include "scenario/registry.hpp"

namespace dt = drowsy::distrib;
namespace ec = drowsy::expctl;
namespace sc = drowsy::scenario;

namespace {

sc::BatchJob make_job(const std::string& name, int hosts, int days, std::uint64_t seed) {
  sc::ScenarioSpec spec;
  spec.name = name;
  spec.hosts = hosts;
  spec.vms.push_back(sc::VmGroup{"v", 0, hosts, 2, 2048, sc::TraceSpec{}, false});
  spec.duration_days = days;
  return sc::BatchJob{spec, sc::Policy::DrowsyDc, seed};
}

/// A journal row as a completed run of `job` would have written it.
dt::JournalEntry measured_entry(const sc::BatchJob& job, double wall_ms) {
  dt::JournalEntry e;
  e.key = dt::job_key(job);
  e.result.scenario = job.spec.name;
  e.result.policy = e.key.policy;
  e.result.seed = e.key.seed;
  e.wall_ms = wall_ms;
  return e;
}

}  // namespace

TEST(CostModel, ExactScenarioAndHeuristicFallbacks) {
  // a: two replicate seeds measured -> exact mean.  b: measured under a
  // *different* spec (other fleet size) but the same scenario name ->
  // scenario-level mean.  c: never seen -> calibrated heuristic.
  const sc::BatchJob a1 = make_job("a", 2, 1, 11);
  const sc::BatchJob a2 = make_job("a", 2, 1, 12);
  const sc::BatchJob b = make_job("b", 3, 2, 21);
  const sc::BatchJob b_variant = make_job("b", 5, 2, 22);
  const sc::BatchJob c = make_job("c", 4, 3, 31);

  dt::CostModel model;
  model.observe(measured_entry(a1, 100.0));
  model.observe(measured_entry(a2, 300.0));
  model.observe(measured_entry(b_variant, 500.0));
  EXPECT_EQ(model.measurements(), 3u);

  const std::vector<sc::BatchJob> grid = {a1, a2, b, c};
  const dt::CostModel::JobCosts priced = model.price(grid);
  ASSERT_EQ(priced.cost.size(), 4u);
  EXPECT_EQ(priced.measured, 2u);
  EXPECT_EQ(priced.scenario, 1u);
  EXPECT_EQ(priced.heuristic, 1u);
  // Exact prices are the replicate mean, shared across seeds of one arm.
  EXPECT_DOUBLE_EQ(priced.cost[0], 200.0);
  EXPECT_DOUBLE_EQ(priced.cost[1], 200.0);
  EXPECT_DOUBLE_EQ(priced.cost[2], 500.0);
  // The unmatched job pays the static heuristic rescaled into ms by the
  // jobs that were priced from measurement.
  const double priced_static = dt::estimate_job_cost(a1) + dt::estimate_job_cost(a2) +
                               dt::estimate_job_cost(b);
  EXPECT_DOUBLE_EQ(priced.calibration, (200.0 + 200.0 + 500.0) / priced_static);
  EXPECT_DOUBLE_EQ(priced.cost[3], priced.calibration * dt::estimate_job_cost(c));
}

TEST(CostModel, NoMeasurementsDegeneratesToStaticHeuristic) {
  const std::vector<sc::BatchJob> grid = {make_job("a", 2, 1, 1), make_job("b", 3, 2, 2)};

  dt::CostModel model;
  // Old-schema rows carry no wall_ms and must contribute nothing.
  dt::JournalEntry old_row = measured_entry(grid[0], 0.0);
  old_row.wall_ms = -1.0;
  model.observe(old_row);
  EXPECT_EQ(model.measurements(), 0u);

  const dt::CostModel::JobCosts priced = model.price(grid);
  EXPECT_EQ(priced.measured, 0u);
  EXPECT_EQ(priced.heuristic, 2u);
  EXPECT_DOUBLE_EQ(priced.calibration, 1.0);
  EXPECT_DOUBLE_EQ(priced.cost[0], dt::estimate_job_cost(grid[0]));
  EXPECT_DOUBLE_EQ(priced.cost[1], dt::estimate_job_cost(grid[1]));
  // An empty cost model plans exactly like the static planner.
  EXPECT_EQ(dt::plan_shards(grid, 2, dt::ShardStrategy::Balanced, priced.cost),
            dt::plan_shards(grid, 2, dt::ShardStrategy::Balanced));
}

TEST(CostModel, MeasuredPlanBalancesPaperCatalogueNoWorseThanHeuristic) {
  // The acceptance bar for `shard plan --costs`: on the real catalogue
  // grid, planning against measured costs must leave a max/min shard
  // spread (evaluated under those measured costs) no worse than the
  // static-heuristic plan's.  Measurements are synthesized from the
  // static cost deterministically distorted per job, standing in for the
  // scenarios the heuristic misjudges.
  const std::string path = std::string(DROWSY_SOURCE_DIR) + "/sweeps/paper_catalogue.json";
  const ec::SweepSpec sweep = ec::sweep_from_json(ec::Json::parse(ec::read_file(path)),
                                                  sc::ScenarioRegistry::builtin());
  const std::vector<sc::BatchJob> jobs = ec::expand(sweep);
  ASSERT_GT(jobs.size(), 20u);

  dt::CostModel model;
  const std::vector<dt::JobKey> keys = dt::job_keys(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double distortion =
        0.25 + 1.75 * static_cast<double>(ec::fnv1a64(keys[i].encode()) % 1000) / 1000.0;
    dt::JournalEntry e;
    e.index = i;
    e.key = keys[i];
    e.result.scenario = jobs[i].spec.name;
    e.result.policy = keys[i].policy;
    e.result.seed = keys[i].seed;
    e.wall_ms = dt::estimate_job_cost(jobs[i]) * distortion;
    model.observe(e);
  }

  const dt::CostModel::JobCosts priced = model.price(jobs);
  EXPECT_EQ(priced.heuristic, 0u);  // every job has evidence
  for (const std::size_t shard_count : {3u, 4u, 8u}) {
    const auto measured_plan =
        dt::plan_shards(jobs, shard_count, dt::ShardStrategy::Balanced, priced.cost);
    const auto static_plan = dt::plan_shards(jobs, shard_count, dt::ShardStrategy::Balanced);
    const double measured_spread =
        dt::cost_spread(dt::shard_costs(measured_plan, priced.cost));
    const double static_spread = dt::cost_spread(dt::shard_costs(static_plan, priced.cost));
    EXPECT_LE(measured_spread, static_spread + 1e-9) << shard_count << " shards";
  }
}
