// Queue-daemon contract, over the real CI smoke sweep: concurrent
// daemons must partition the queue exactly (rename-claiming), drain it
// into done/ journals whose merge is byte-identical to a single-process
// run, quarantine broken tasks in failed/, resume their own crashed
// claims, and honor the STOP sentinel.
#include "distrib/daemon.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "distrib/merge.hpp"
#include "distrib/reaper.hpp"
#include "expctl/runs_io.hpp"
#include "expctl/spec_io.hpp"
#include "obs/snapshot.hpp"
#include "scenario/registry.hpp"

namespace dt = drowsy::distrib;
namespace ec = drowsy::expctl;
namespace fs = std::filesystem;
namespace sc = drowsy::scenario;

namespace {

struct DaemonFixture : ::testing::Test {
  static const std::string& sweep_bytes() {
    static const std::string bytes =
        ec::read_file(std::string(DROWSY_SOURCE_DIR) + "/sweeps/ci_smoke.json");
    return bytes;
  }

  static std::vector<sc::BatchJob>& grid() {
    static std::vector<sc::BatchJob> jobs = [] {
      const ec::SweepSpec sweep = ec::sweep_from_json(ec::Json::parse(sweep_bytes()),
                                                      sc::ScenarioRegistry::builtin());
      return ec::expand(sweep);
    }();
    return jobs;
  }

  static std::vector<sc::RunResult>& reference() {
    static std::vector<sc::RunResult> results = [] {
      sc::BatchRunner runner(2);
      return runner.run(grid());
    }();
    return results;
  }

  /// Fresh queue root with the sweep file enqueued beside the manifests.
  static fs::path make_queue(const char* tag, std::size_t shard_count) {
    const fs::path root = fs::path(::testing::TempDir()) / (std::string("drowsy_q_") + tag);
    fs::remove_all(root);
    fs::create_directories(root);
    ASSERT_TRUE_OR_THROW(sc::write_file((root / "ci_smoke.json").string(), sweep_bytes()));
    const auto plan = dt::plan_shards(grid(), shard_count, dt::ShardStrategy::Balanced);
    for (std::size_t s = 0; s < plan.size(); ++s) {
      dt::ShardManifest m;
      m.sweep_name = "ci-smoke";
      m.sweep_file = "ci_smoke.json";  // resolved by basename in the queue root
      m.sweep_hash = ec::fnv1a64(sweep_bytes());
      m.shard_index = s;
      m.shard_count = shard_count;
      m.total_jobs = grid().size();
      m.job_indices = plan[s];
      const fs::path path = root / ("shard_" + std::to_string(s) + ".json");
      ASSERT_TRUE_OR_THROW(sc::write_file(path.string(), dt::to_json(m).dump()));
    }
    return root;
  }

  static dt::DaemonOptions options(const fs::path& root, const std::string& worker) {
    dt::DaemonOptions opts;
    opts.queue_dir = root.string();
    opts.worker_id = worker;
    opts.threads = 2;
    opts.max_idle_s = 1.0;
    opts.poll_ms = 25;
    return opts;
  }

  /// gtest's ASSERT_* macros cannot run in non-void helpers.
  static void ASSERT_TRUE_OR_THROW(bool ok) {
    if (!ok) throw std::runtime_error("fixture setup failed");
  }
};

}  // namespace

TEST_F(DaemonFixture, TwoDaemonsDrainASharedQueueByteIdentically) {
  const fs::path root = make_queue("pair", 3);

  dt::DaemonOutcome first;
  dt::DaemonOutcome second;
  std::thread w1([&] { first = dt::run_daemon(options(root, "w1")); });
  std::thread w2([&] { second = dt::run_daemon(options(root, "w2")); });
  w1.join();
  w2.join();

  // Every task done exactly once, none failed, queue root drained.
  EXPECT_EQ(first.completed + second.completed, 3u);
  EXPECT_EQ(first.failed + second.failed, 0u);
  EXPECT_EQ(first.exit, dt::DaemonExit::Idle);
  EXPECT_EQ(second.exit, dt::DaemonExit::Idle);
  for (std::size_t s = 0; s < 3; ++s) {
    const std::string name = "shard_" + std::to_string(s);
    EXPECT_FALSE(fs::exists(root / (name + ".json")));
    EXPECT_TRUE(fs::exists(root / "done" / (name + ".json")));
    EXPECT_TRUE(fs::exists(root / "done" / (name + ".journal.jsonl")));
  }

  // The merged journals reproduce the single-process batch bit for bit,
  // and every daemon-written row carries a measured duration.
  std::vector<dt::JournalEntry> entries;
  for (std::size_t s = 0; s < 3; ++s) {
    const dt::JournalContents contents = dt::read_journal(
        (root / "done" / ("shard_" + std::to_string(s) + ".journal.jsonl")).string());
    for (const dt::JournalEntry& entry : contents.entries) {
      EXPECT_TRUE(entry.has_wall_ms());
    }
    entries.insert(entries.end(), contents.entries.begin(), contents.entries.end());
  }
  const auto merged = dt::merge_journals(grid(), entries);
  EXPECT_EQ(sc::to_csv(merged), sc::to_csv(reference()));
}

TEST_F(DaemonFixture, StopSentinelExitsWithoutClaiming) {
  const fs::path root = make_queue("stop", 1);
  ASSERT_TRUE(sc::write_file((root / "STOP").string(), ""));

  dt::DaemonOptions opts = options(root, "w1");
  opts.max_idle_s = 30.0;  // STOP must fire long before idleness would
  const dt::DaemonOutcome outcome = dt::run_daemon(opts);
  EXPECT_EQ(outcome.exit, dt::DaemonExit::Stopped);
  EXPECT_EQ(outcome.completed, 0u);
  EXPECT_TRUE(fs::exists(root / "shard_0.json")) << "task must stay pending";
}

TEST_F(DaemonFixture, BrokenTaskIsQuarantinedAndServiceContinues) {
  const fs::path root = make_queue("broken", 2);
  // Corrupt shard_0: a hash mismatch (planned against different sweep
  // bytes) is exactly the drift validate_manifest must refuse.
  dt::ShardManifest bad = dt::manifest_from_json(
      ec::Json::parse(ec::read_file((root / "shard_0.json").string())));
  bad.sweep_hash = ec::fnv1a64("not the sweep");
  ASSERT_TRUE(sc::write_file((root / "shard_0.json").string(), dt::to_json(bad).dump()));

  const dt::DaemonOutcome outcome = dt::run_daemon(options(root, "w1"));
  EXPECT_EQ(outcome.completed, 1u);
  EXPECT_EQ(outcome.failed, 1u);
  EXPECT_TRUE(fs::exists(root / "failed" / "shard_0.json"));
  EXPECT_TRUE(fs::exists(root / "failed" / "shard_0.error.txt"));
  EXPECT_TRUE(fs::exists(root / "done" / "shard_1.journal.jsonl"));
}

TEST_F(DaemonFixture, RestartResumesOwnClaimedTasks) {
  const fs::path root = make_queue("resume", 1);
  // Simulate a daemon that died right after claiming: the manifest sits
  // in claimed/w1/ and the queue root has no pending copy.
  const fs::path claimed = root / "claimed" / "w1";
  fs::create_directories(claimed);
  fs::rename(root / "shard_0.json", claimed / "shard_0.json");

  const dt::DaemonOutcome outcome = dt::run_daemon(options(root, "w1"));
  EXPECT_EQ(outcome.completed, 1u);
  EXPECT_TRUE(fs::exists(root / "done" / "shard_0.json"));
  EXPECT_TRUE(fs::exists(root / "done" / "shard_0.journal.jsonl"));
  EXPECT_TRUE(fs::is_empty(claimed));
}

TEST_F(DaemonFixture, StaleClaimsAreFoundByAgeAndWorker) {
  const fs::path root = make_queue("stale", 2);
  // No claimed/ directory yet: nothing is stale, and that is not an error.
  EXPECT_TRUE(dt::find_stale_claims(root.string(), 0.0).empty());

  // A worker claims shard 0 and dies; back-date the claim two hours.
  const fs::path claimed = root / "claimed" / "deadworker";
  fs::create_directories(claimed);
  fs::rename(root / "shard_0.json", claimed / "shard_0.json");
  fs::last_write_time(claimed / "shard_0.json",
                      fs::file_time_type::clock::now() - std::chrono::hours(2));
  // Its journal (not a manifest) must not count as a claim.
  ASSERT_TRUE_OR_THROW(
      sc::write_file((claimed / "shard_0.journal.jsonl").string(), "{}\n"));

  const auto stale = dt::find_stale_claims(root.string(), 3600.0);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].worker_id, "deadworker");
  EXPECT_EQ(stale[0].manifest_path, (claimed / "shard_0.json").string());
  EXPECT_GE(stale[0].age_s, 3600.0);

  // A generous threshold keeps a live worker's claim off the list.
  EXPECT_TRUE(dt::find_stale_claims(root.string(), 3 * 3600.0).empty());

  // A missing queue root stays a hard error, matching run_daemon.
  EXPECT_THROW(static_cast<void>(dt::find_stale_claims(
                   (fs::path(::testing::TempDir()) / "drowsy_q_missing").string(), 1.0)),
               dt::DistribError);
}

TEST_F(DaemonFixture, UnusableQueueThrows) {
  dt::DaemonOptions opts;
  opts.queue_dir = (fs::path(::testing::TempDir()) / "drowsy_q_nonexistent").string();
  opts.worker_id = "w1";
  EXPECT_THROW(static_cast<void>(dt::run_daemon(opts)), dt::DistribError);

  const fs::path root = make_queue("badworker", 1);
  dt::DaemonOptions bad_worker = options(root, "a/b");
  EXPECT_THROW(static_cast<void>(dt::run_daemon(bad_worker)), dt::DistribError);
  dt::DaemonOptions empty_worker = options(root, "");
  EXPECT_THROW(static_cast<void>(dt::run_daemon(empty_worker)), dt::DistribError);
}

TEST_F(DaemonFixture, StaleClaimsPreferTheMetricsHeartbeat) {
  namespace obs = drowsy::obs;
  const fs::path root = make_queue("heartbeat", 2);
  // Manifest mtimes date from `shard plan` (rename preserves them), so a
  // two-hour-old manifest alone says nothing about worker liveness.
  const fs::path claimed = root / "claimed" / "slowworker";
  fs::create_directories(claimed);
  fs::rename(root / "shard_0.json", claimed / "shard_0.json");
  fs::last_write_time(claimed / "shard_0.json",
                      fs::file_time_type::clock::now() - std::chrono::hours(2));

  // A fresh metrics snapshot is a heartbeat: the claim is not stale even
  // though the manifest is ancient.
  obs::WorkerSnapshot snap;
  snap.worker_id = "slowworker";
  snap.updated_unix_ms = obs::wall_clock_unix_ms();
  obs::write_snapshot_file((root / "metrics" / "slowworker.json").string(), snap);
  EXPECT_TRUE(dt::find_stale_claims(root.string(), 3600.0).empty());

  // Once the heartbeat itself goes silent, the claim is stale again —
  // and flagged as judged by the snapshot, not the manifest.
  fs::last_write_time(root / "metrics" / "slowworker.json",
                      fs::file_time_type::clock::now() - std::chrono::hours(2));
  const auto stale = dt::find_stale_claims(root.string(), 3600.0);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].worker_id, "slowworker");
  EXPECT_TRUE(stale[0].from_snapshot);
  EXPECT_GE(stale[0].age_s, 3600.0);

  // A worker without a snapshot still falls back to the manifest mtime.
  const fs::path claimed2 = root / "claimed" / "quietworker";
  fs::create_directories(claimed2);
  fs::rename(root / "shard_1.json", claimed2 / "shard_1.json");
  fs::last_write_time(claimed2 / "shard_1.json",
                      fs::file_time_type::clock::now() - std::chrono::hours(2));
  const auto both = dt::find_stale_claims(root.string(), 3600.0);
  ASSERT_EQ(both.size(), 2u);
  for (const dt::StaleClaim& claim : both) {
    if (claim.worker_id == "quietworker") {
      EXPECT_FALSE(claim.from_snapshot);
    }
    if (claim.worker_id == "slowworker") {
      EXPECT_TRUE(claim.from_snapshot);
    }
  }
}

TEST_F(DaemonFixture, DaemonPublishesAMetricsSnapshot) {
  namespace obs = drowsy::obs;
  const fs::path root = make_queue("metrics", 2);
  const dt::DaemonOutcome outcome = dt::run_daemon(options(root, "w1"));
  EXPECT_EQ(outcome.completed, 2u);

  const obs::WorkerSnapshot snap =
      obs::read_snapshot_file((root / "metrics" / "w1.json").string());
  EXPECT_EQ(snap.worker_id, "w1");
  EXPECT_GT(snap.updated_unix_ms, 0u);
  EXPECT_EQ(snap.tasks_done, 2u);
  EXPECT_EQ(snap.tasks_failed, 0u);
  EXPECT_EQ(snap.jobs_done, grid().size());
  EXPECT_EQ(snap.journal_rows, grid().size());
  // The event-core profile accumulated across every executed run.
  EXPECT_GT(snap.profile.total_events(), 0u);
  // Every executed task materialized at least one workload trace.
  EXPECT_GT(snap.trace_cache_misses, 0u);
}

TEST_F(DaemonFixture, DaemonGrantsRenewsAndReleasesLeases) {
  const fs::path root = make_queue("lease", 1);
  dt::DaemonOptions opts = options(root, "w1");
  opts.lease_ttl_s = 123.0;

  // At the "claimed" event the lease file must already exist — the grant
  // happens before the task is announced, so no observable claim is ever
  // lease-less.
  bool lease_seen_at_claim = false;
  dt::Lease observed;
  opts.on_event = [&](const std::string& line) {
    if (line.rfind("claimed", 0) != 0) return;
    const std::string lease_path =
        dt::lease_path_for((root / "claimed" / "w1" / "shard_0.json").string());
    if (fs::exists(lease_path)) {
      lease_seen_at_claim = true;
      observed = dt::read_lease_file(lease_path);
    }
  };

  const dt::DaemonOutcome outcome = dt::run_daemon(opts);
  EXPECT_EQ(outcome.completed, 1u);
  ASSERT_TRUE(lease_seen_at_claim);
  EXPECT_EQ(observed.worker_id, "w1");
  EXPECT_EQ(observed.manifest, "shard_0.json");
  EXPECT_EQ(observed.ttl_s, 123.0);
  EXPECT_GE(observed.renewed_unix_ms, observed.granted_unix_ms);
  // Released with the archive: the claim directory holds nothing back.
  EXPECT_TRUE(fs::is_empty(root / "claimed" / "w1"));
  EXPECT_TRUE(dt::list_claims(root.string()).empty());
}

TEST_F(DaemonFixture, LeaseFilesAreNotMistakenForTasks) {
  // Regression: the leftover scan and the stale scan both walk
  // claimed/<worker>/*.json — a lease file must never be executed as (or
  // quarantined as) a task.
  const fs::path root = make_queue("leasefile", 1);
  const fs::path claimed = root / "claimed" / "w1";
  fs::create_directories(claimed);
  fs::rename(root / "shard_0.json", claimed / "shard_0.json");
  dt::Lease lease;
  lease.worker_id = "w1";
  lease.manifest = "shard_0.json";
  lease.granted_unix_ms = 1;
  lease.renewed_unix_ms = 1;
  lease.ttl_s = 900.0;
  dt::write_lease_file(dt::lease_path_for((claimed / "shard_0.json").string()),
                       lease);

  const dt::DaemonOutcome outcome = dt::run_daemon(options(root, "w1"));
  EXPECT_EQ(outcome.completed, 1u);
  EXPECT_EQ(outcome.failed, 0u) << "lease file must not be quarantined";
  EXPECT_TRUE(fs::exists(root / "done" / "shard_0.json"));
  EXPECT_FALSE(fs::exists(root / "failed" / "shard_0.lease.json"));
  // And find_stale_claims reports exactly one claim for the pair, not two.
  fs::create_directories(root / "claimed" / "w2");
  fs::copy_file(root / "done" / "shard_0.json",
                root / "claimed" / "w2" / "shard_0.json");
  fs::last_write_time(root / "claimed" / "w2" / "shard_0.json",
                      fs::file_time_type::clock::now() - std::chrono::hours(2));
  lease.worker_id = "w2";
  dt::write_lease_file(
      dt::lease_path_for((root / "claimed" / "w2" / "shard_0.json").string()),
      lease);
  fs::last_write_time(root / "claimed" / "w2" / "shard_0.lease.json",
                      fs::file_time_type::clock::now() - std::chrono::hours(2));
  const auto stale = dt::find_stale_claims(root.string(), 3600.0);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_TRUE(stale[0].has_lease);
}

TEST_F(DaemonFixture, IdleDaemonReapsAJournallessClaimAndReExecutesIt) {
  // A worker that died between claim and first journal row: the reap
  // preserves zero rows and the re-execution runs the shard from
  // scratch — still exactly once, still byte-identical.
  const fs::path root = make_queue("idlereap", 1);
  const fs::path claimed = root / "claimed" / "deadworker";
  fs::create_directories(claimed);
  fs::rename(root / "shard_0.json", claimed / "shard_0.json");
  fs::last_write_time(claimed / "shard_0.json",
                      fs::file_time_type::clock::now() - std::chrono::hours(2));

  dt::DaemonOptions opts = options(root, "w2");
  opts.reap_stale_after_s = 3600.0;
  const dt::DaemonOutcome outcome = dt::run_daemon(opts);
  EXPECT_EQ(outcome.reaped, 1u);
  EXPECT_EQ(outcome.completed, 1u);
  EXPECT_EQ(outcome.failed, 0u);

  const dt::JournalContents done =
      dt::read_journal((root / "done" / "shard_0.journal.jsonl").string());
  ASSERT_EQ(done.entries.size(), grid().size());
  const auto merged = dt::merge_journals(grid(), done.entries);
  EXPECT_EQ(sc::to_csv(merged), sc::to_csv(reference()));

  const auto reaps = dt::read_reap_journal(root.string());
  ASSERT_EQ(reaps.size(), 1u);
  EXPECT_EQ(reaps[0].worker_id, "deadworker");
  EXPECT_EQ(reaps[0].rows_preserved, 0u);
}

TEST_F(DaemonFixture, ReapingCanBeDisabled) {
  const fs::path root = make_queue("noreap", 1);
  const fs::path claimed = root / "claimed" / "deadworker";
  fs::create_directories(claimed);
  fs::rename(root / "shard_0.json", claimed / "shard_0.json");
  fs::last_write_time(claimed / "shard_0.json",
                      fs::file_time_type::clock::now() - std::chrono::hours(2));

  dt::DaemonOptions opts = options(root, "w2");
  opts.reap = false;
  opts.reap_stale_after_s = 3600.0;
  const dt::DaemonOutcome outcome = dt::run_daemon(opts);
  EXPECT_EQ(outcome.reaped, 0u);
  EXPECT_EQ(outcome.completed, 0u);
  EXPECT_TRUE(fs::exists(claimed / "shard_0.json")) << "claim left untouched";
}
