#include "distrib/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "expctl/runs_io.hpp"

namespace dt = drowsy::distrib;
namespace ec = drowsy::expctl;
namespace sc = drowsy::scenario;

namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "drowsy_journal_" + name;
}

dt::JournalEntry entry(std::size_t index, std::uint64_t seed) {
  dt::JournalEntry e;
  e.index = index;
  e.key.spec_hash = ec::fnv1a64("spec" + std::to_string(index));
  e.key.policy = "drowsy-dc";
  e.key.seed = seed;
  e.result.scenario = "s" + std::to_string(index);
  e.result.policy = "drowsy-dc";
  e.result.seed = seed;
  e.result.simulated_hours = 24;
  e.result.kwh = 1.5 + static_cast<double>(index) / 3.0;
  e.result.requests = 10 * index;
  return e;
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
  std::fclose(f);
  return text;
}

void spit(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f), content.size());
  std::fclose(f);
}

}  // namespace

TEST(Journal, EntryRoundTrip) {
  const dt::JournalEntry e = entry(7, 42);
  const ec::Json j = dt::to_json(e);
  const dt::JournalEntry back = dt::journal_entry_from_json(j);
  EXPECT_EQ(back.index, 7u);
  EXPECT_TRUE(back.key == e.key);
  EXPECT_EQ(back.result.kwh, e.result.kwh);
  EXPECT_EQ(dt::to_json(back).dump(), j.dump());
}

TEST(Journal, WallMsRoundTripsAndOldSchemaRowsParse) {
  dt::JournalEntry e = entry(3, 9);
  e.wall_ms = 123.5;
  ASSERT_TRUE(e.has_wall_ms());
  const ec::Json j = dt::to_json(e);
  const dt::JournalEntry back = dt::journal_entry_from_json(j);
  EXPECT_TRUE(back.has_wall_ms());
  EXPECT_EQ(back.wall_ms, 123.5);

  // An old-schema row (written before wall_ms existed) parses, reports
  // itself unmeasured, and re-serializes to its original bytes.
  const ec::Json old = dt::to_json(entry(3, 9));
  EXPECT_EQ(old.find("wall_ms"), nullptr);
  const dt::JournalEntry old_back = dt::journal_entry_from_json(old);
  EXPECT_FALSE(old_back.has_wall_ms());
  EXPECT_EQ(dt::to_json(old_back).dump(), old.dump());
}

TEST(Journal, NegativeWallMsIsRejected) {
  ec::Json j = dt::to_json(entry(1, 42));
  j.set("wall_ms", -5.0);
  EXPECT_THROW(static_cast<void>(dt::journal_entry_from_json(j)), dt::DistribError);
}

TEST(Journal, MixedSchemaFileReadsCleanly) {
  // A journal part-written by an old binary and finished by a new one:
  // both row shapes coexist in one file.
  const std::string path = temp_path("mixed_schema.jsonl");
  std::remove(path.c_str());
  {
    dt::JournalWriter writer(path, 0);
    writer.append(entry(0, 1));  // unmeasured (old schema)
    dt::JournalEntry measured = entry(1, 2);
    measured.wall_ms = 42.0;
    writer.append(measured);
  }
  const dt::JournalContents contents = dt::read_journal(path);
  ASSERT_EQ(contents.entries.size(), 2u);
  EXPECT_FALSE(contents.entries[0].has_wall_ms());
  EXPECT_TRUE(contents.entries[1].has_wall_ms());
  EXPECT_EQ(contents.entries[1].wall_ms, 42.0);
}

TEST(Journal, EntryParseRejectsInconsistentKey) {
  ec::Json j = dt::to_json(entry(1, 42));
  j.set("seed", std::uint64_t{43});  // key no longer matches embedded result
  EXPECT_THROW(static_cast<void>(dt::journal_entry_from_json(j)), dt::DistribError);
}

TEST(Journal, MissingFileIsEmpty) {
  const dt::JournalContents contents = dt::read_journal(temp_path("nonexistent.jsonl"));
  EXPECT_TRUE(contents.entries.empty());
  EXPECT_EQ(contents.valid_bytes, 0u);
  EXPECT_FALSE(contents.truncated_tail);
}

TEST(Journal, WriteReadRoundTrip) {
  const std::string path = temp_path("roundtrip.jsonl");
  std::remove(path.c_str());
  {
    dt::JournalWriter writer(path, 0);
    writer.append(entry(0, 1));
    writer.append(entry(1, 2));
    writer.append(entry(2, 3));
  }
  const dt::JournalContents contents = dt::read_journal(path);
  ASSERT_EQ(contents.entries.size(), 3u);
  EXPECT_FALSE(contents.truncated_tail);
  EXPECT_EQ(contents.valid_bytes, slurp(path).size());
  EXPECT_EQ(contents.entries[1].index, 1u);
  EXPECT_EQ(contents.entries[2].result.kwh, entry(2, 3).result.kwh);
}

TEST(Journal, TornTailIsDiscardedAndTruncatedOnResume) {
  const std::string path = temp_path("torn.jsonl");
  std::remove(path.c_str());
  {
    dt::JournalWriter writer(path, 0);
    writer.append(entry(0, 1));
    writer.append(entry(1, 2));
  }
  const std::string intact = slurp(path);
  // Simulate a crash mid-append: a prefix of row 2 without its newline.
  spit(path, intact + "{\"index\": 2, \"spec_ha");

  const dt::JournalContents contents = dt::read_journal(path);
  ASSERT_EQ(contents.entries.size(), 2u);
  EXPECT_TRUE(contents.truncated_tail);
  EXPECT_EQ(contents.valid_bytes, intact.size());

  // Re-opening for append drops the torn bytes, so the next row lands on
  // a clean line.
  {
    dt::JournalWriter writer(path, contents.valid_bytes);
    writer.append(entry(2, 3));
  }
  const dt::JournalContents resumed = dt::read_journal(path);
  ASSERT_EQ(resumed.entries.size(), 3u);
  EXPECT_FALSE(resumed.truncated_tail);
  EXPECT_EQ(resumed.entries[2].key.seed, 3u);
}

TEST(Journal, MalformedMidFileIsAHardError) {
  const std::string path = temp_path("midfile.jsonl");
  std::remove(path.c_str());
  const std::string good = dt::to_json(entry(0, 1)).dump(0) + "\n";
  spit(path, good + "not json\n" + good);
  EXPECT_THROW(static_cast<void>(dt::read_journal(path)), dt::DistribError);
}

TEST(Journal, CompleteButInvalidRowIsAHardErrorEvenAtTheTail) {
  // A complete line (newline present) that parses as JSON but has the
  // wrong shape cannot be crash fallout — refuse it.
  const std::string path = temp_path("invalid_tail.jsonl");
  std::remove(path.c_str());
  spit(path, dt::to_json(entry(0, 1)).dump(0) + "\n{\"index\": 2}\n");
  EXPECT_THROW(static_cast<void>(dt::read_journal(path)), dt::DistribError);
}
