// Contract of the study registry: every built-in study expands to a
// valid grid, runs through the BatchRunner on a shrunk parameter set,
// and reduces to a figure CSV whose header matches the study's declared
// schema.  Plus the per-figure invariants the paper anchors: vm3 == vm4
// in fig1, grace-on suspends below grace-off in fig3, table1's per-host
// columns.
#include "study/study.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/registry.hpp"

namespace sc = drowsy::scenario;
namespace st = drowsy::study;

namespace {

/// Shrunk parameters per study so the whole file stays test-fast.
st::StudyParams small_params(const st::Study& study) {
  st::StudyParams params = study.params;
  params.set("days", 1);
  if (study.name == "fig4-im-efficiency") params.set("years", 1);
  return params;
}

std::vector<std::string> lines_of(const std::string& csv) {
  std::vector<std::string> lines;
  std::istringstream in(csv);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> cells_of(const std::string& line) {
  std::vector<std::string> cells;
  std::istringstream in(line);
  std::string cell;
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  return cells;
}

/// Run a study once per (study, shrunk-params) and memoize — several
/// tests inspect the same figure.
const st::StudyOutcome& outcome_of(const std::string& name) {
  static std::map<std::string, st::StudyOutcome> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    const st::Study& study = st::StudyRegistry::builtin().at(name);
    it = cache.emplace(name, st::run_study(study, small_params(study), 2)).first;
  }
  return it->second;
}

TEST(StudyRegistry, BuiltinCatalogueIsSane) {
  const auto& registry = st::StudyRegistry::builtin();
  ASSERT_GE(registry.all().size(), 4u);
  for (const st::Study& study : registry.all()) {
    SCOPED_TRACE(study.name);
    EXPECT_FALSE(study.figure.empty());
    EXPECT_FALSE(study.description.empty());
    EXPECT_FALSE(study.csv_header.empty());
    EXPECT_EQ(registry.find(study.name), &study);
    // The grid must expand and validate under the defaults.
    const auto jobs = st::jobs_for(study, study.params);
    EXPECT_FALSE(jobs.empty());
  }
  EXPECT_EQ(registry.find("no-such-study"), nullptr);
  EXPECT_THROW(static_cast<void>(registry.at("no-such-study")), st::StudyError);
}

TEST(StudyRegistry, EveryStudyRoundTripsOnASmallGrid) {
  for (const st::Study& study : st::StudyRegistry::builtin().all()) {
    SCOPED_TRACE(study.name);
    const st::StudyOutcome& outcome = outcome_of(study.name);
    const std::vector<std::string> lines = lines_of(outcome.csv);
    ASSERT_GT(lines.size(), 1u);  // header + data
    EXPECT_EQ(lines.front(), study.csv_header);
    const std::size_t columns = cells_of(study.csv_header).size();
    for (std::size_t i = 1; i < lines.size(); ++i) {
      EXPECT_EQ(cells_of(lines[i]).size(), columns) << "row " << i;
    }
  }
}

TEST(StudyParams, UnknownNamesAreErrorsBothWays) {
  st::StudyParams params = {{"days", 2.0}};
  EXPECT_EQ(params.get("days"), 2.0);
  params.set("days", 5.0);
  EXPECT_EQ(params.get_int("days"), 5);
  EXPECT_THROW(params.set("dayz", 1.0), st::StudyError);
  EXPECT_THROW(static_cast<void>(params.get("rate")), st::StudyError);
  params.set_from_token("days=3");
  EXPECT_EQ(params.get_int("days"), 3);
  EXPECT_THROW(params.set_from_token("days"), st::StudyError);
  EXPECT_THROW(params.set_from_token("days=abc"), st::StudyError);
}

TEST(Fig1Study, SharedWorkloadRowsAreIdentical) {
  const std::vector<std::string> lines = lines_of(outcome_of("fig1-workload-profiles").csv);
  ASSERT_EQ(lines.size(), 1u + 6u);
  // vm3 and vm4 share NutanixLike variant 0 with a pinned seed: their
  // rows must agree in every column but the name.
  const std::string vm3 = lines[1].substr(lines[1].find(','));
  const std::string vm4 = lines[2].substr(lines[2].find(','));
  EXPECT_EQ(vm3, vm4);
  // All six reconstructions are LLMI-class.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(cells_of(lines[i]).at(2), "LLMI") << lines[i];
  }
}

TEST(Fig3Study, GraceOnSuppressesOscillation) {
  const std::vector<std::string> lines = lines_of(outcome_of("fig3-grace-ablation").csv);
  ASSERT_EQ(lines.size(), 1u + 8u);  // 4 grace tops x {on, off}
  long on_suspends = 0, off_suspends = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> cells = cells_of(lines[i]);
    const long suspends = std::atol(cells.at(4).c_str());
    (cells.at(2) == "on" ? on_suspends : off_suspends) += suspends;
  }
  // The paper's §IV point: the grace time prevents hosts from
  // "alternating between fully awake and suspended states".
  EXPECT_LT(on_suspends, off_suspends);
  EXPECT_GT(off_suspends, 0);
}

TEST(Fig4Study, QuarterGridAndLlmuSpecificity) {
  const std::vector<std::string> lines = lines_of(outcome_of("fig4-im-efficiency").csv);
  ASSERT_EQ(lines.size(), 1u + 8u * 4u);  // 8 panels x 4 quarters (years=1)
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> cells = cells_of(lines[i]);
    if (cells.at(0) == "fig4-h") {
      // The always-active LLMU trace: the model must not hallucinate
      // idleness (paper: specificity ~1).
      EXPECT_EQ(cells.at(2), "specificity");
      EXPECT_GT(std::atof(cells.at(7).c_str()), 0.95) << lines[i];
    }
  }
}

TEST(Table1Study, PerHostColumnsComeFromRunResults) {
  const std::vector<std::string> lines = lines_of(outcome_of("table1-suspend-fraction").csv);
  ASSERT_EQ(lines.size(), 1u + 2u);  // drowsy-dc and neat+s3
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> cells = cells_of(lines[i]);
    ASSERT_EQ(cells.size(), 7u) << lines[i];
    for (std::size_t c = 1; c <= 5; ++c) {
      const double pct = std::atof(cells.at(c).c_str());
      EXPECT_GE(pct, 0.0) << lines[i];
      EXPECT_LE(pct, 100.0) << lines[i];
    }
  }
  // The control arm's gain column is zero by construction.
  EXPECT_EQ(cells_of(lines[2]).at(0), "neat+s3");
  EXPECT_EQ(cells_of(lines[2]).at(6), "0.000000");
}

TEST(ReduceStudy, RejectsMismatchedResults) {
  const st::Study& study = st::StudyRegistry::builtin().at("fig3-grace-ablation");
  const st::StudyParams params = small_params(study);
  std::vector<sc::RunResult> results = outcome_of("fig3-grace-ablation").results;

  // The full, faithful vector reduces to the same CSV as run_study did.
  EXPECT_EQ(st::reduce_study(study, params, results),
            outcome_of("fig3-grace-ablation").csv);

  // Truncated results: wrong grid size.
  std::vector<sc::RunResult> truncated(results.begin(), results.end() - 1);
  EXPECT_THROW(static_cast<void>(st::reduce_study(study, params, truncated)),
               st::StudyError);

  // Reordered rows: right size, wrong identities.
  std::vector<sc::RunResult> swapped = results;
  std::swap(swapped.front(), swapped.back());
  EXPECT_THROW(static_cast<void>(st::reduce_study(study, params, swapped)),
               st::StudyError);
}

}  // namespace
