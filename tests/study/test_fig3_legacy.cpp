// Byte-identity of the fig3 port: the study path (declarative grid ->
// expctl::expand -> parallel BatchRunner -> reducer) against the legacy
// bench path captured before the bespoke loop was deleted from
// bench/fig3_suspending_module.cpp.
//
// legacy_fig3_csv() below is that capture: the pre-port driver shape — a
// hand-rolled nested loop that builds each grid point's spec itself,
// executes it with a direct run_one() call (no sweep file, no expand, no
// BatchRunner) and formats its own rows.  (The port also moved the
// oscillation experiment from a hand-wired 1-host cluster to scenario
// altitude — that deviation is documented in docs/studies.md; what this
// test freezes is the loop that produced the figure at the moment of the
// port.)  If the study's grid order, axis naming, seed derivation or
// reduction ever drifts from what the bespoke loop computed, this diff
// breaks byte-for-byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "scenario/registry.hpp"
#include "study/study.hpp"

namespace sc = drowsy::scenario;
namespace st = drowsy::study;

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// The legacy bench loop, frozen at the port (duration shrunk through
/// the same `days` knob the study exposes so the comparison stays
/// test-fast).  Deliberately NOT written in terms of src/study: every
/// grid point is built and run by hand, the way the bench did it.
std::string legacy_fig3_csv(int days, double rate) {
  std::string out =
      "scenario,policy,grace,grace_max_s,suspends,suspends_per_day,suspended_pct,"
      "wakes,wake_p99_ms,kwh\n";
  const drowsy::util::SimTime grace_tops_ms[] = {15000, 30000, 60000, 120000};
  for (const drowsy::util::SimTime grace_ms : grace_tops_ms) {
    for (const sc::Policy policy : {sc::Policy::DrowsyDc, sc::Policy::NeatS3}) {
      sc::ScenarioSpec spec = sc::ScenarioRegistry::builtin().at("fig3-oscillation");
      spec.duration_days = days;
      spec.request_rate_per_hour = rate;
      spec.grace_max = grace_ms;
      spec.grace_min = std::min(spec.grace_min, grace_ms);
      spec.name += ".g" + std::to_string(grace_ms);
      const sc::RunResult r = sc::run_one(spec, policy, spec.seed);
      const bool grace_on = policy == sc::Policy::DrowsyDc;
      const double sim_days =
          static_cast<double>(r.simulated_hours) / drowsy::util::kHoursPerDay;
      out += r.scenario + "," + r.policy + "," + (grace_on ? "on" : "off") + "," +
             std::to_string(grace_ms / 1000) + "," + std::to_string(r.suspends) + "," +
             num(sim_days > 0.0 ? r.suspends / sim_days : 0.0) + "," +
             num(100.0 * r.suspend_fraction) + "," + std::to_string(r.wakes) + "," +
             num(r.wake_latency_p99_ms) + "," + num(r.kwh) + "\n";
    }
  }
  return out;
}

TEST(Fig3LegacyDiff, StudyPathReproducesTheLegacyBenchByteForByte) {
  const st::Study& study = st::StudyRegistry::builtin().at("fig3-grace-ablation");
  st::StudyParams params = study.params;
  params.set("days", 1);

  const std::string legacy = legacy_fig3_csv(1, params.get("rate"));
  // 3 worker threads on an 8-job grid: the comparison also re-proves
  // that BatchRunner's job-order results make threading invisible.
  const st::StudyOutcome outcome = st::run_study(study, params, 3);
  EXPECT_EQ(outcome.csv, legacy);
}

}  // namespace
