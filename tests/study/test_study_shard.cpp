// Studies must run unchanged through the sharded pipeline: `study dump`
// emits a sweep document that round-trips through expctl and expands to
// the identical grid, and journals merged by distrib reduce to the same
// figure CSV as the direct path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "distrib/journal.hpp"
#include "distrib/merge.hpp"
#include "distrib/shard.hpp"
#include "expctl/runs_io.hpp"
#include "expctl/spec_io.hpp"
#include "scenario/registry.hpp"
#include "study/study.hpp"

namespace dt = drowsy::distrib;
namespace ec = drowsy::expctl;
namespace sc = drowsy::scenario;
namespace st = drowsy::study;

namespace {

st::StudyParams small_params(const st::Study& study) {
  st::StudyParams params = study.params;
  params.set("days", 1);
  if (study.name == "fig4-im-efficiency") params.set("years", 1);
  return params;
}

TEST(StudyDump, SweepJsonRoundTripsToTheIdenticalGrid) {
  for (const st::Study& study : st::StudyRegistry::builtin().all()) {
    SCOPED_TRACE(study.name);
    const st::StudyParams params = small_params(study);
    const ec::SweepSpec sweep = study.sweep(params);
    // Serialize exactly as `drowsy_sweep study dump` does, then parse as
    // a worker would (`shard run` / the daemon).
    const ec::SweepSpec reparsed = ec::sweep_from_json(
        ec::Json::parse(ec::to_json(sweep).dump()), sc::ScenarioRegistry::builtin());
    const auto direct = ec::expand(sweep);
    const auto via_json = ec::expand(reparsed);
    ASSERT_EQ(direct.size(), via_json.size());
    const auto direct_keys = dt::job_keys(direct);
    const auto json_keys = dt::job_keys(via_json);
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(direct_keys[i].encode(), json_keys[i].encode()) << "job " << i;
      EXPECT_EQ(direct[i].spec.name, via_json[i].spec.name) << "job " << i;
    }
  }
}

TEST(StudyReduce, MergedJournalsReduceByteIdenticalToTheDirectPath) {
  const st::Study& study = st::StudyRegistry::builtin().at("fig3-grace-ablation");
  const st::StudyParams params = small_params(study);
  const std::vector<sc::BatchJob> jobs = st::jobs_for(study, params);

  const st::StudyOutcome direct = st::run_study(study, params, 2);
  ASSERT_EQ(direct.results.size(), jobs.size());

  // Journal the runs as two shards would, in scrambled completion order;
  // a JSON round-trip per entry proves RunResult (including the per-host
  // fractions) survives the hand-off with exact bits.
  std::vector<dt::JournalEntry> entries;
  for (std::size_t i = jobs.size(); i-- > 0;) {
    dt::JournalEntry entry;
    entry.index = i;
    entry.key = dt::job_key(jobs[i]);
    entry.result = ec::run_result_from_json(
        ec::Json::parse(ec::to_json(direct.results[i]).dump()));
    entry.wall_ms = 1.0;
    entries.push_back(std::move(entry));
  }

  const std::vector<sc::RunResult> merged = dt::merge_journals(jobs, entries);
  EXPECT_EQ(st::reduce_study(study, params, merged), direct.csv);
}

}  // namespace
