#include "trace/generators.hpp"

#include <gtest/gtest.h>

#include "util/sim_time.hpp"

namespace t = drowsy::trace;
namespace u = drowsy::util;

namespace {
t::GenOptions one_year() {
  t::GenOptions o;
  o.years = 1;
  return o;
}
}  // namespace

TEST(Generators, DailyBackupActiveOnlyAtBackupHour) {
  const auto trace = t::daily_backup(one_year(), /*hour=*/2, /*duration=*/1);
  ASSERT_EQ(trace.size(), static_cast<std::size_t>(u::kHoursPerYear));
  for (std::size_t h = 0; h < trace.size(); ++h) {
    const int hour_of_day = static_cast<int>(h % 24);
    if (hour_of_day == 2) {
      EXPECT_GT(trace.hours()[h], 0.0) << "hour " << h;
    } else {
      EXPECT_EQ(trace.hours()[h], 0.0) << "hour " << h;
    }
  }
  EXPECT_EQ(trace.classify(), t::VmClass::Llmi);
}

TEST(Generators, ComicStripsSilentInJulyAndAugust) {
  const auto trace = t::comic_strips(one_year());
  for (std::size_t h = 0; h < trace.size(); ++h) {
    const auto c = u::calendar_of(static_cast<u::SimTime>(h) * u::kMsPerHour);
    if (c.month == 6 || c.month == 7) {
      EXPECT_EQ(trace.hours()[h], 0.0) << "active during holidays at hour " << h;
    }
  }
}

TEST(Generators, ComicStripsOnlyOnPublicationMornings) {
  const auto trace = t::comic_strips(one_year());
  bool any_active = false;
  for (std::size_t h = 0; h < trace.size(); ++h) {
    if (trace.hours()[h] == 0.0) continue;
    any_active = true;
    const auto c = u::calendar_of(static_cast<u::SimTime>(h) * u::kMsPerHour);
    EXPECT_TRUE(c.day_of_week == 0 || c.day_of_week == 2 || c.day_of_week == 4)
        << "active on weekday " << c.day_of_week;
    EXPECT_GE(c.hour, 6);
    EXPECT_LE(c.hour, 11);
  }
  EXPECT_TRUE(any_active);
}

TEST(Generators, LlmuNeverIdle) {
  const auto trace = t::llmu_constant(one_year());
  for (double v : trace.hours()) EXPECT_GT(v, 0.0);
  EXPECT_EQ(trace.classify(), t::VmClass::Llmu);
}

TEST(Generators, NutanixLikeIsLlmiWithFig1Amplitudes) {
  for (std::size_t variant = 0; variant < 5; ++variant) {
    const auto trace = t::nutanix_like(variant, one_year());
    EXPECT_EQ(trace.classify(), t::VmClass::Llmi) << "variant " << variant;
    double peak = 0.0;
    for (double v : trace.hours()) peak = std::max(peak, v);
    // Fig. 1 peaks are in the 5–25 % band.
    EXPECT_GT(peak, 0.04) << "variant " << variant;
    EXPECT_LT(peak, 0.30) << "variant " << variant;
  }
}

TEST(Generators, NutanixVariantsDiffer) {
  const auto a = t::nutanix_like(0, one_year());
  const auto b = t::nutanix_like(1, one_year());
  EXPECT_NE(a.hours(), b.hours());
}

TEST(Generators, NutanixWeekIsOneWeekLong) {
  const auto traces = t::nutanix_week();
  ASSERT_EQ(traces.size(), 5u);
  for (const auto& tr : traces) {
    EXPECT_EQ(tr.size(), static_cast<std::size_t>(7 * 24));
  }
}

TEST(Generators, DiplomaResultsSpikesOnJulyTwentieth) {
  const auto trace = t::diploma_results(one_year());
  // Day-of-year 200 = July 20 (non-leap); hours 14 and 15 spike.
  const std::size_t base = 200u * 24u;
  EXPECT_GT(trace.hours()[base + 14], 0.5);
  EXPECT_GT(trace.hours()[base + 15], 0.5);
  // A random winter day is silent.
  EXPECT_EQ(trace.hours()[40 * 24 + 14], 0.0);
  EXPECT_EQ(trace.classify(), t::VmClass::Llmi);
}

TEST(Generators, OfficeHoursWeekdaysOnly) {
  const auto trace = t::office_hours(one_year());
  for (std::size_t h = 0; h < trace.size(); ++h) {
    const auto c = u::calendar_of(static_cast<u::SimTime>(h) * u::kMsPerHour);
    const bool should_be_active = c.day_of_week < 5 && c.hour >= 9 && c.hour < 17;
    if (should_be_active) {
      EXPECT_GT(trace.hours()[h], 0.0) << "hour " << h;
    } else {
      EXPECT_EQ(trace.hours()[h], 0.0) << "hour " << h;
    }
  }
}

TEST(Generators, EndOfMonthActiveOnlyAtMonthEnd) {
  const auto trace = t::end_of_month(one_year(), /*days_active=*/2);
  for (std::size_t h = 0; h < trace.size(); ++h) {
    if (trace.hours()[h] == 0.0) continue;
    const auto c = u::calendar_of(static_cast<u::SimTime>(h) * u::kMsPerHour);
    EXPECT_GE(c.day_of_month, u::days_in_month(c.month) - 2)
        << "active mid-month at hour " << h;
  }
}

TEST(Generators, GoogleLikeLlmuStaysBusy) {
  const auto trace = t::google_like_llmu(one_year());
  EXPECT_EQ(trace.classify(), t::VmClass::Llmu);
  EXPECT_GT(trace.mean_activity(), 0.3);
  EXPECT_LT(trace.idle_fraction(), 0.01);
}

TEST(Generators, SlmuBurstShortAndBusy) {
  const auto trace = t::slmu_burst(6);
  EXPECT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace.classify(), t::VmClass::Slmu);
  for (double v : trace.hours()) EXPECT_GT(v, 0.8);
}

TEST(Generators, RandomLlmiDeterministicPerSeed) {
  const auto a = t::random_llmi(42, 1);
  const auto b = t::random_llmi(42, 1);
  const auto c = t::random_llmi(43, 1);
  EXPECT_EQ(a.hours(), b.hours());
  EXPECT_NE(a.hours(), c.hours());
  EXPECT_EQ(a.classify(), t::VmClass::Llmi);
}

TEST(Generators, AllLevelsWithinUnitInterval) {
  for (const auto& trace :
       {t::daily_backup(one_year()), t::comic_strips(one_year()),
        t::llmu_constant(one_year()), t::nutanix_like(2, one_year()),
        t::diploma_results(one_year()), t::google_like_llmu(one_year())}) {
    for (double v : trace.hours()) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Generators, ThreeYearTracesForFig4) {
  t::GenOptions o;
  o.years = 3;
  EXPECT_EQ(t::daily_backup(o).size(), static_cast<std::size_t>(3 * u::kHoursPerYear));
  EXPECT_EQ(t::comic_strips(o).size(), static_cast<std::size_t>(3 * u::kHoursPerYear));
}
