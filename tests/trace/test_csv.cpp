#include "trace/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace t = drowsy::trace;

TEST(TraceCsv, RoundTrip) {
  std::vector<t::ActivityTrace> traces;
  traces.emplace_back(std::vector<double>{0.1, 0.2, 0.3}, "a");
  traces.emplace_back(std::vector<double>{0.9, 0.8}, "b");
  std::stringstream ss;
  t::write_csv(ss, traces);
  const auto loaded = t::read_csv(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name(), "a");
  EXPECT_EQ(loaded[1].name(), "b");
  EXPECT_EQ(loaded[0].hours(), traces[0].hours());
  EXPECT_EQ(loaded[1].hours(), traces[1].hours());
}

TEST(TraceCsv, UnevenColumnsPadWithEmptyCells) {
  std::vector<t::ActivityTrace> traces;
  traces.emplace_back(std::vector<double>{0.1}, "short");
  traces.emplace_back(std::vector<double>{0.5, 0.6, 0.7}, "long");
  std::stringstream ss;
  t::write_csv(ss, traces);
  const auto loaded = t::read_csv(ss);
  EXPECT_EQ(loaded[0].size(), 1u);
  EXPECT_EQ(loaded[1].size(), 3u);
}

TEST(TraceCsv, EmptyInputThrows) {
  std::stringstream ss;
  EXPECT_THROW((void)t::read_csv(ss), std::runtime_error);
}

TEST(TraceCsv, BadNumberThrows) {
  std::stringstream ss("a,b\n0.1,zzz\n");
  EXPECT_THROW((void)t::read_csv(ss), std::runtime_error);
}

TEST(TraceCsv, ExtraColumnThrows) {
  std::stringstream ss("a\n0.1,0.2\n");
  EXPECT_THROW((void)t::read_csv(ss), std::runtime_error);
}

TEST(TraceCsv, ToleratesCrlfLineEndings) {
  std::stringstream ss("a,b\r\n0.1,0.9\r\n0.2,0.8\r\n");
  const auto loaded = t::read_csv(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name(), "a");
  EXPECT_EQ(loaded[1].name(), "b") << "no stray \\r on the last header cell";
  ASSERT_EQ(loaded[1].size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[1].hours()[1], 0.8) << "no stray \\r on the last data cell";
}

TEST(TraceCsv, ToleratesUtf8Bom) {
  std::stringstream ss("\xEF\xBB\xBF" "a,b\n0.1,0.9\n");
  const auto loaded = t::read_csv(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name(), "a") << "BOM must not glue onto the first column name";
}

TEST(TraceCsv, ToleratesTrailingBlankLines) {
  std::stringstream ss("a\n0.1\n0.2\n\n\r\n\n");
  const auto loaded = t::read_csv(ss);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].size(), 2u);
}

TEST(TraceCsv, ExportedFileWithAllThreeArtifactsRoundTrips) {
  // A Windows-exported file: BOM + CRLF + trailing blanks, all at once.
  std::stringstream ss("\xEF\xBB\xBF" "x,y\r\n0.25,0.75\r\n0.5,\r\n\r\n");
  const auto loaded = t::read_csv(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].size(), 2u);
  EXPECT_EQ(loaded[1].size(), 1u) << "empty trailing cell still pads, not parses";
  EXPECT_DOUBLE_EQ(loaded[0].hours()[1], 0.5);
}

TEST(TraceCsv, FileRoundTrip) {
  std::vector<t::ActivityTrace> traces;
  traces.emplace_back(std::vector<double>{0.25, 0.75}, "file-test");
  const std::string path = ::testing::TempDir() + "/drowsy_trace_test.csv";
  t::save_csv(path, traces);
  const auto loaded = t::load_csv(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].hours(), traces[0].hours());
}

TEST(TraceCsv, MissingFileThrows) {
  EXPECT_THROW((void)t::load_csv("/nonexistent/nope.csv"), std::runtime_error);
}
