#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace t = drowsy::trace;

TEST(ActivityTrace, BasicAccessors) {
  t::ActivityTrace trace({0.0, 0.5, 1.0}, "demo");
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.name(), "demo");
  EXPECT_DOUBLE_EQ(trace.at_hour(1), 0.5);
}

TEST(ActivityTrace, PeriodicExtensionWrapsAround) {
  t::ActivityTrace trace({0.1, 0.2, 0.3});
  EXPECT_DOUBLE_EQ(trace.at_hour(3), 0.1);
  EXPECT_DOUBLE_EQ(trace.at_hour(4), 0.2);
  EXPECT_DOUBLE_EQ(trace.at_hour(300), trace.at_hour(0));
}

TEST(ActivityTrace, IdleFraction) {
  t::ActivityTrace trace({0.0, 0.0, 0.5, 0.0});
  EXPECT_DOUBLE_EQ(trace.idle_fraction(), 0.75);
  EXPECT_DOUBLE_EQ(trace.mean_activity(), 0.125);
}

TEST(ActivityTrace, IdleFractionRespectsThreshold) {
  t::ActivityTrace trace({0.004, 0.1});
  EXPECT_DOUBLE_EQ(trace.idle_fraction(0.005), 0.5);
  EXPECT_DOUBLE_EQ(trace.idle_fraction(0.2), 1.0);
}

TEST(ActivityTrace, ClassifyShortLived) {
  // A two-day trace is short-lived no matter the load.
  std::vector<double> hours(48, 1.0);
  t::ActivityTrace trace(std::move(hours));
  EXPECT_EQ(trace.classify(), t::VmClass::Slmu);
}

TEST(ActivityTrace, ClassifyLlmu) {
  std::vector<double> hours(24 * 30, 0.8);
  t::ActivityTrace trace(std::move(hours));
  EXPECT_EQ(trace.classify(), t::VmClass::Llmu);
}

TEST(ActivityTrace, ClassifyLlmi) {
  // Mostly idle: one active hour per day.
  std::vector<double> hours(24 * 30, 0.0);
  for (std::size_t i = 2; i < hours.size(); i += 24) hours[i] = 0.5;
  t::ActivityTrace trace(std::move(hours));
  EXPECT_EQ(trace.classify(), t::VmClass::Llmi);
}

TEST(ActivityTrace, ExtendedToTiles) {
  t::ActivityTrace week({0.5, 0.0});
  const t::ActivityTrace year = week.extended_to(100);
  EXPECT_EQ(year.size(), 100u);
  EXPECT_DOUBLE_EQ(year.hours()[98], 0.5);
  EXPECT_DOUBLE_EQ(year.hours()[99], 0.0);
}

TEST(ActivityTrace, PushBack) {
  t::ActivityTrace trace;
  trace.push_back(0.25);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.at_hour(0), 0.25);
}

TEST(VmClass, Names) {
  EXPECT_STREQ(t::to_string(t::VmClass::Slmu), "SLMU");
  EXPECT_STREQ(t::to_string(t::VmClass::Llmu), "LLMU");
  EXPECT_STREQ(t::to_string(t::VmClass::Llmi), "LLMI");
}
