#include "kern/hrtimer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace k = drowsy::kern;
namespace u = drowsy::util;

TEST(HrTimerQueue, EmptyPeek) {
  k::HrTimerQueue q;
  EXPECT_EQ(q.peek(), nullptr);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.fire_due(u::hours(100.0)), 0u);
}

TEST(HrTimerQueue, PeekReturnsEarliest) {
  k::HrTimerQueue q;
  k::HrTimer a, b, c;
  q.arm(a, u::seconds(30));
  q.arm(b, u::seconds(10));
  q.arm(c, u::seconds(20));
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(q.peek(), &b);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_GE(q.validate(), 0);
}

TEST(HrTimerQueue, EqualExpiriesOrderedByArmSequence) {
  k::HrTimerQueue q;
  k::HrTimer a, b;
  q.arm(a, u::seconds(10));
  q.arm(b, u::seconds(10));
  EXPECT_EQ(q.peek(), &a);  // armed first wins ties
}

TEST(HrTimerQueue, CancelRemoves) {
  k::HrTimerQueue q;
  k::HrTimer a, b;
  q.arm(a, u::seconds(10));
  q.arm(b, u::seconds(20));
  q.cancel(a);
  EXPECT_EQ(q.peek(), &b);
  EXPECT_FALSE(a.armed());
  q.cancel(a);  // double-cancel is a no-op
  EXPECT_EQ(q.size(), 1u);
}

TEST(HrTimerQueue, FireDueInvokesCallbacksInOrder) {
  k::HrTimerQueue q;
  std::vector<int> order;
  k::HrTimer a, b, c;
  a.callback = [&order](u::SimTime) { order.push_back(1); };
  b.callback = [&order](u::SimTime) { order.push_back(2); };
  c.callback = [&order](u::SimTime) { order.push_back(3); };
  q.arm(b, u::seconds(20));
  q.arm(a, u::seconds(10));
  q.arm(c, u::seconds(30));
  EXPECT_EQ(q.fire_due(u::seconds(25)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(c.armed());
}

TEST(HrTimerQueue, FireDueBoundaryInclusive) {
  k::HrTimerQueue q;
  k::HrTimer a;
  q.arm(a, u::seconds(10));
  EXPECT_EQ(q.fire_due(u::seconds(10)), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(HrTimerQueue, CallbackMayRearm) {
  // Recurring-service pattern: the callback re-arms its own timer.
  k::HrTimerQueue q;
  k::HrTimer a;
  int fires = 0;
  a.callback = [&](u::SimTime now) {
    ++fires;
    if (fires < 3) q.arm(a, now + u::seconds(10));
  };
  q.arm(a, u::seconds(10));
  EXPECT_EQ(q.fire_due(u::seconds(10)), 1u);
  EXPECT_EQ(q.fire_due(u::seconds(20)), 1u);
  EXPECT_EQ(q.fire_due(u::seconds(30)), 1u);
  EXPECT_EQ(fires, 3);
  EXPECT_TRUE(q.empty());
}

TEST(HrTimerQueue, PeekFilteredSkipsFilteredOwners) {
  k::HrTimerQueue q;
  k::HrTimer kernel_timer, user_timer;
  kernel_timer.owner_pid = 1;
  user_timer.owner_pid = 100;
  q.arm(kernel_timer, u::seconds(5));   // earliest, but filtered out
  q.arm(user_timer, u::seconds(50));
  const k::HrTimer* t =
      q.peek_filtered([](const k::HrTimer& timer) { return timer.owner_pid >= 100; });
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t, &user_timer);
}

TEST(HrTimerQueue, PeekFilteredAllFilteredReturnsNull) {
  k::HrTimerQueue q;
  k::HrTimer a;
  a.owner_pid = 1;
  q.arm(a, u::seconds(5));
  EXPECT_EQ(q.peek_filtered([](const k::HrTimer&) { return false; }), nullptr);
}

TEST(HrTimerQueue, ForEachVisitsInExpiryOrder) {
  k::HrTimerQueue q;
  k::HrTimer a, b, c;
  q.arm(a, u::seconds(30));
  q.arm(b, u::seconds(10));
  q.arm(c, u::seconds(20));
  std::vector<u::SimTime> seen;
  q.for_each([&seen](const k::HrTimer& t) { seen.push_back(t.expiry); });
  EXPECT_EQ(seen, (std::vector<u::SimTime>{u::seconds(10), u::seconds(20), u::seconds(30)}));
}

TEST(HrTimerQueue, ManyTimersStayConsistent) {
  k::HrTimerQueue q;
  std::vector<k::HrTimer> timers(500);
  for (std::size_t i = 0; i < timers.size(); ++i) {
    q.arm(timers[i], u::seconds(static_cast<double>((i * 37) % 100)));
  }
  EXPECT_GE(q.validate(), 0);
  // Cancel every third timer.
  for (std::size_t i = 0; i < timers.size(); i += 3) q.cancel(timers[i]);
  EXPECT_GE(q.validate(), 0);
  // Firing everything leaves the queue empty.
  q.fire_due(u::seconds(100));
  EXPECT_TRUE(q.empty());
}
