#include "kern/process.hpp"

#include <gtest/gtest.h>

namespace k = drowsy::kern;

TEST(Blacklist, ExactMatch) {
  k::Blacklist b;
  b.add_exact("watchdog");
  EXPECT_TRUE(b.contains("watchdog"));
  EXPECT_FALSE(b.contains("watchdogs"));
  EXPECT_FALSE(b.contains("watch"));
}

TEST(Blacklist, PrefixMatch) {
  k::Blacklist b;
  b.add_prefix("kworker");
  EXPECT_TRUE(b.contains("kworker/0:1"));
  EXPECT_TRUE(b.contains("kworker"));
  EXPECT_FALSE(b.contains("worker"));
}

TEST(Blacklist, StandardRulesCoverKernelAndMonitoring) {
  const k::Blacklist b = k::Blacklist::standard();
  EXPECT_TRUE(b.contains("kworker/3:2"));
  EXPECT_TRUE(b.contains("ksoftirqd/0"));
  EXPECT_TRUE(b.contains("rcu_sched"));
  EXPECT_TRUE(b.contains("watchdog"));
  EXPECT_TRUE(b.contains("monitoring-agent"));
  EXPECT_TRUE(b.contains("drowsy-suspendd"));
  EXPECT_FALSE(b.contains("webserver"));
  EXPECT_FALSE(b.contains("backup-service"));
  EXPECT_GE(b.rule_count(), 5u);
}

TEST(ProcessTable, SpawnAssignsUniquePids) {
  k::ProcessTable t;
  const k::Pid a = t.spawn("a");
  const k::Pid b = t.spawn("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.size(), 2u);
}

TEST(ProcessTable, FindAndState) {
  k::ProcessTable t;
  const k::Pid pid = t.spawn("svc", k::ProcState::Sleeping);
  ASSERT_NE(t.find(pid), nullptr);
  EXPECT_EQ(t.find(pid)->state, k::ProcState::Sleeping);
  t.set_state(pid, k::ProcState::Running);
  EXPECT_EQ(t.find(pid)->state, k::ProcState::Running);
  EXPECT_EQ(t.find(9999), nullptr);
}

TEST(ProcessTable, Reap) {
  k::ProcessTable t;
  const k::Pid pid = t.spawn("gone");
  EXPECT_TRUE(t.reap(pid));
  EXPECT_FALSE(t.reap(pid));
  EXPECT_EQ(t.find(pid), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

TEST(ProcessTable, CountIf) {
  k::ProcessTable t;
  t.spawn("a", k::ProcState::Running);
  t.spawn("b", k::ProcState::Running);
  t.spawn("c", k::ProcState::BlockedIo);
  EXPECT_EQ(t.count_if([](const k::Process& p) { return p.state == k::ProcState::Running; }),
            2u);
  EXPECT_EQ(
      t.count_if([](const k::Process& p) { return p.state == k::ProcState::BlockedIo; }),
      1u);
}

TEST(ProcessTable, ForEachVisitsAll) {
  k::ProcessTable t;
  t.spawn("x");
  t.spawn("y");
  int visits = 0;
  t.for_each([&visits](const k::Process&) { ++visits; });
  EXPECT_EQ(visits, 2);
}

TEST(ProcState, ToString) {
  EXPECT_STREQ(k::to_string(k::ProcState::Running), "running");
  EXPECT_STREQ(k::to_string(k::ProcState::Sleeping), "sleeping");
  EXPECT_STREQ(k::to_string(k::ProcState::BlockedIo), "blocked-io");
  EXPECT_STREQ(k::to_string(k::ProcState::Zombie), "zombie");
}
