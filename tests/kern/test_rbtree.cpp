#include "kern/rbtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace k = drowsy::kern;

namespace {

struct Item {
  int key = 0;
  k::RbNode node{};
};

void insert_item(k::RbTree& tree, Item& item) {
  tree.insert(&item.node, [](const k::RbNode* a, const k::RbNode* b) {
    return k::rb_entry<Item, &Item::node>(const_cast<k::RbNode*>(a))->key <
           k::rb_entry<Item, &Item::node>(const_cast<k::RbNode*>(b))->key;
  });
}

std::vector<int> in_order_keys(const k::RbTree& tree) {
  std::vector<int> keys;
  for (k::RbNode* n = tree.first(); n != nullptr; n = k::RbTree::next(n)) {
    keys.push_back(k::rb_entry<Item, &Item::node>(n)->key);
  }
  return keys;
}

}  // namespace

TEST(RbTree, EmptyTree) {
  k::RbTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.first(), nullptr);
  EXPECT_EQ(tree.last(), nullptr);
  EXPECT_EQ(tree.validate(), 0);
}

TEST(RbTree, SingleInsert) {
  k::RbTree tree;
  Item a{42};
  insert_item(tree, a);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.first(), &a.node);
  EXPECT_EQ(tree.last(), &a.node);
  EXPECT_GT(tree.validate(), 0);
  EXPECT_EQ(tree.root(), &a.node);
}

TEST(RbTree, InOrderTraversalSorted) {
  k::RbTree tree;
  std::vector<std::unique_ptr<Item>> items;
  const int keys[] = {5, 3, 8, 1, 4, 7, 9, 2, 6, 0};
  for (int key : keys) {
    items.push_back(std::make_unique<Item>(Item{key}));
    insert_item(tree, *items.back());
  }
  EXPECT_EQ(in_order_keys(tree), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_GT(tree.validate(), 0);
}

TEST(RbTree, ReverseTraversal) {
  k::RbTree tree;
  std::vector<std::unique_ptr<Item>> items;
  for (int key : {3, 1, 2}) {
    items.push_back(std::make_unique<Item>(Item{key}));
    insert_item(tree, *items.back());
  }
  std::vector<int> keys;
  for (k::RbNode* n = tree.last(); n != nullptr; n = k::RbTree::prev(n)) {
    keys.push_back(k::rb_entry<Item, &Item::node>(n)->key);
  }
  EXPECT_EQ(keys, (std::vector<int>{3, 2, 1}));
}

TEST(RbTree, EraseLeaf) {
  k::RbTree tree;
  Item a{1}, b{2}, c{3};
  insert_item(tree, a);
  insert_item(tree, b);
  insert_item(tree, c);
  tree.erase(&a.node);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(in_order_keys(tree), (std::vector<int>{2, 3}));
  EXPECT_GT(tree.validate(), 0);
  // erase() resets the node for reuse.
  EXPECT_EQ(a.node.parent, nullptr);
  EXPECT_EQ(a.node.left, nullptr);
  EXPECT_EQ(a.node.right, nullptr);
}

TEST(RbTree, EraseRootWithTwoChildren) {
  k::RbTree tree;
  Item a{1}, b{2}, c{3};
  insert_item(tree, a);
  insert_item(tree, b);
  insert_item(tree, c);
  tree.erase(&b.node);  // b is the root after rebalancing 1,2,3
  EXPECT_EQ(in_order_keys(tree), (std::vector<int>{1, 3}));
  EXPECT_GT(tree.validate(), 0);
}

TEST(RbTree, EraseEverything) {
  k::RbTree tree;
  std::vector<std::unique_ptr<Item>> items;
  for (int key = 0; key < 20; ++key) {
    items.push_back(std::make_unique<Item>(Item{key}));
    insert_item(tree, *items.back());
  }
  for (auto& item : items) {
    tree.erase(&item->node);
    EXPECT_GE(tree.validate(), 0) << "invariant broken after erasing " << item->key;
  }
  EXPECT_TRUE(tree.empty());
}

TEST(RbTree, AscendingInsertionStaysBalanced) {
  // The classic BST killer: sorted insertion.  A red-black tree must keep
  // black-height O(log n).
  k::RbTree tree;
  std::vector<std::unique_ptr<Item>> items;
  for (int key = 0; key < 1024; ++key) {
    items.push_back(std::make_unique<Item>(Item{key}));
    insert_item(tree, *items.back());
  }
  const int bh = tree.validate();
  EXPECT_GT(bh, 0);
  EXPECT_LE(bh, 11);  // black-height <= log2(n+1) = 10, +1 slack
}

TEST(RbTree, DuplicateKeysAllowed) {
  k::RbTree tree;
  Item a{5}, b{5}, c{5};
  insert_item(tree, a);
  insert_item(tree, b);
  insert_item(tree, c);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(in_order_keys(tree), (std::vector<int>{5, 5, 5}));
  tree.erase(&b.node);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_GT(tree.validate(), 0);
}

class RbTreeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RbTreeFuzz, MatchesMultisetUnderRandomOps) {
  drowsy::util::Rng rng(GetParam());
  k::RbTree tree;
  std::multiset<int> reference;
  std::vector<std::unique_ptr<Item>> live;

  for (int op = 0; op < 2000; ++op) {
    const bool do_insert = live.empty() || rng.bernoulli(0.6);
    if (do_insert) {
      const int key = static_cast<int>(rng.uniform_int(0, 199));
      live.push_back(std::make_unique<Item>(Item{key}));
      insert_item(tree, *live.back());
      reference.insert(key);
    } else {
      const std::size_t idx =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(live.size()) - 1));
      tree.erase(&live[idx]->node);
      reference.erase(reference.find(live[idx]->key));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(tree.size(), reference.size());
    if (op % 100 == 0) {
      ASSERT_GE(tree.validate(), 0) << "red-black violation at op " << op;
      const auto keys = in_order_keys(tree);
      ASSERT_TRUE(std::equal(keys.begin(), keys.end(), reference.begin(), reference.end()));
    }
  }
  ASSERT_GE(tree.validate(), 0);
  const auto keys = in_order_keys(tree);
  ASSERT_TRUE(std::equal(keys.begin(), keys.end(), reference.begin(), reference.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));
