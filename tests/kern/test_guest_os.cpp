#include "kern/guest_os.hpp"

#include <gtest/gtest.h>

namespace k = drowsy::kern;
namespace u = drowsy::util;

TEST(GuestOs, BootsWithSystemProcesses) {
  k::GuestOs os;
  EXPECT_GE(os.processes().size(), 5u);
  // Fresh guest: the only running processes are blacklisted system ones.
  EXPECT_FALSE(os.any_relevant_running(k::Blacklist::standard()));
  // But without the blacklist, the watchdog/kworker look active — the
  // paper's "false negatives".
  EXPECT_TRUE(os.any_relevant_running(k::Blacklist{}));
}

TEST(GuestOs, ServiceVisibleWhenRunning) {
  k::GuestOs os;
  const k::Pid svc = os.spawn_service("webserver");
  EXPECT_FALSE(os.any_relevant_running(k::Blacklist::standard()));
  os.processes().set_state(svc, k::ProcState::Running);
  EXPECT_TRUE(os.any_relevant_running(k::Blacklist::standard()));
}

TEST(GuestOs, BlockedIoDetected) {
  k::GuestOs os;
  const k::Pid svc = os.spawn_service("db");
  EXPECT_FALSE(os.any_blocked_on_io());
  os.processes().set_state(svc, k::ProcState::BlockedIo);
  EXPECT_TRUE(os.any_blocked_on_io());
}

TEST(GuestOs, SessionsCount) {
  k::GuestOs os;
  const k::Pid svc = os.spawn_service("sshd");
  EXPECT_EQ(os.total_open_sessions(), 0);
  os.open_session(svc);
  os.open_session(svc);
  EXPECT_EQ(os.total_open_sessions(), 2);
  os.close_session(svc);
  EXPECT_EQ(os.total_open_sessions(), 1);
}

TEST(GuestOs, RecordHourComputesActivity) {
  k::GuestOs os;
  os.record_hour(0.5);
  EXPECT_DOUBLE_EQ(os.last_hour_activity(), 0.5);
}

TEST(GuestOs, RecordHourFiltersNoise) {
  k::GuestOs os;
  // Activity below the noise floor counts as idle (paper §III-C: "very
  // short scheduling quanta — noise — are filtered out").
  os.record_hour(0.004, /*noise_floor=*/0.005);
  EXPECT_DOUBLE_EQ(os.last_hour_activity(), 0.0);
  EXPECT_GT(os.last_hour_ledger().noise_quanta, 0u);
  os.record_hour(0.006, /*noise_floor=*/0.005);
  EXPECT_GT(os.last_hour_activity(), 0.0);
}

TEST(GuestOs, RecordHourFullyIdle) {
  k::GuestOs os;
  os.record_hour(0.0);
  EXPECT_DOUBLE_EQ(os.last_hour_activity(), 0.0);
  EXPECT_EQ(os.last_hour_ledger().used_quanta, 0u);
}

TEST(GuestOs, TimerServiceFiresAndRearms) {
  k::GuestOs os;
  int fires = 0;
  // A service that wants to run every hour on the hour.
  const k::Pid pid = os.add_timer_service(
      "backup", /*now=*/0,
      [](u::SimTime now) { return u::next_hour(now); },
      [&fires](u::SimTime) { ++fires; });
  EXPECT_EQ(os.timers().size(), 1u);

  os.fire_due_timers(u::hours(1.0));
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(os.processes().find(pid)->state, k::ProcState::Running);
  // Re-armed for the next hour.
  EXPECT_EQ(os.timers().size(), 1u);

  os.processes().set_state(pid, k::ProcState::Sleeping);
  os.fire_due_timers(u::hours(2.0));
  EXPECT_EQ(fires, 2);
}

TEST(GuestOs, TimerServiceCanStop) {
  k::GuestOs os;
  os.add_timer_service(
      "oneshot", 0, [](u::SimTime now) { return now == 0 ? u::hours(1.0) : u::kNever; });
  EXPECT_EQ(os.timers().size(), 1u);
  os.fire_due_timers(u::hours(1.0));
  EXPECT_TRUE(os.timers().empty());  // chose kNever: not re-armed
}

TEST(GuestOs, EarliestRelevantTimerFiltersBlacklisted) {
  k::GuestOs os;
  const k::Blacklist bl = k::Blacklist::standard();
  // A blacklisted monitoring process arms an early timer.
  const k::Pid mon = os.processes().spawn("monitoring-agent2");
  (void)mon;
  // No relevant timers yet.
  EXPECT_EQ(os.earliest_relevant_timer(bl), u::kNever);

  os.add_timer_service("backup", 0, [](u::SimTime) { return u::hours(5.0); });
  EXPECT_EQ(os.earliest_relevant_timer(bl), u::hours(5.0));
}

TEST(GuestOs, EarliestRelevantTimerSkipsMonitoring) {
  k::GuestOs os;
  const k::Blacklist bl = k::Blacklist::standard();
  // The monitoring agent polls every minute — it must NOT set the waking
  // date (paper §V-B: "we filter the timers according to the processes
  // that registered them").
  os.add_timer_service("monitoring-agent", 0, [](u::SimTime) { return u::minutes(1); });
  os.add_timer_service("backup", 0, [](u::SimTime) { return u::hours(5.0); });
  EXPECT_EQ(os.earliest_relevant_timer(bl), u::hours(5.0));
  // Unfiltered, the monitoring timer is the earliest.
  ASSERT_NE(os.timers().peek(), nullptr);
  EXPECT_EQ(os.timers().peek()->expiry, u::minutes(1));
}
