// End-to-end integration: a miniature of the paper's real-environment
// experiment (§VI-A), checking the *shape* of the published results:
// Drowsy-DC's idleness-aware placement yields more suspension time than a
// Neat-style baseline, identical workloads get colocated, the grace time
// suppresses suspend/resume oscillation, and energy ordering matches.
#include <gtest/gtest.h>

#include "baselines/neat.hpp"
#include "core/drowsy.hpp"
#include "metrics/colocation.hpp"
#include "trace/generators.hpp"

namespace c = drowsy::core;
namespace s = drowsy::sim;
namespace n = drowsy::net;
namespace u = drowsy::util;
namespace t = drowsy::trace;
namespace b = drowsy::baselines;

namespace {

/// The paper's testbed in miniature: 4 pool hosts (P2–P5), 2 LLMU VMs and
/// 6 LLMI VMs (V3/V4 share a workload), 2 VMs max per host.
struct Testbed {
  s::EventQueue queue;
  s::Cluster cluster{queue};
  n::SdnSwitch sw{queue};

  Testbed() {
    for (int i = 0; i < 4; ++i) {
      cluster.add_host(s::HostSpec{"P" + std::to_string(i + 2), 8, 16384, 2});
    }
    t::GenOptions o;
    o.years = 1;
    o.noise = 0.02;
    auto llmu1 = t::llmu_constant(o);
    o.seed = 43;
    auto llmu2 = t::llmu_constant(o);
    add("V1", llmu1);
    add("V2", llmu2);
    const auto week = t::nutanix_week();
    add("V3", week[0].extended_to(u::kHoursPerYear));
    add("V4", week[0].extended_to(u::kHoursPerYear));  // same workload as V3
    add("V5", week[1].extended_to(u::kHoursPerYear));
    add("V6", week[2].extended_to(u::kHoursPerYear));
    add("V7", week[3].extended_to(u::kHoursPerYear));
    add("V8", week[4].extended_to(u::kHoursPerYear));
    // Initial placement: interleaved so consolidation has work to do.
    for (s::VmId id = 0; id < 8; ++id) cluster.place(id, id % 4);
  }

  void add(const std::string& name, const t::ActivityTrace& trace) {
    cluster.add_vm(s::VmSpec{name, 2, 6144}, trace);
  }
};

}  // namespace

TEST(EndToEnd, DrowsySuspendsMoreThanNeat) {
  double drowsy_fraction = 0.0, neat_fraction = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    Testbed tb;
    c::ControllerOptions opts;
    opts.relocate_all = pass == 0;
    opts.requests.base_rate_per_hour = 40;
    opts.drowsy.suspend.use_grace_time = pass == 0;  // Neat: no grace (§VI-A-1)
    c::Controller controller(tb.cluster, tb.sw, opts);
    b::NeatConsolidation neat(tb.cluster);
    if (pass == 1) controller.set_policy(&neat);
    controller.install();
    controller.pretrain_models(14 * 24);
    controller.run_hours(3 * 24);

    double total = 0.0;
    for (const auto& host : tb.cluster.hosts()) {
      host->account_now();
      total += host->suspended_fraction(0);
    }
    (pass == 0 ? drowsy_fraction : neat_fraction) = total / 4.0;
  }
  EXPECT_GT(drowsy_fraction, 0.2);
  EXPECT_GT(drowsy_fraction, neat_fraction)
      << "idleness-aware placement must beat Neat on suspension time";
}

TEST(EndToEnd, IdenticalWorkloadsColocate) {
  Testbed tb;
  c::ControllerOptions opts;
  opts.relocate_all = true;
  opts.requests.base_rate_per_hour = 20;
  c::Controller controller(tb.cluster, tb.sw, opts);
  controller.install();
  controller.pretrain_models(21 * 24);

  drowsy::metrics::ColocationMatrix matrix(8);
  controller.run_hours(3 * 24, [&](std::int64_t) { matrix.sample(tb.cluster); });

  // V3 (index 2) and V4 (index 3) share a workload: they must be together
  // most of the time.  The two LLMU VMs (0, 1) likewise pack together.
  EXPECT_GT(matrix.percent(2, 3), 60.0);
  EXPECT_GT(matrix.percent(0, 1), 60.0);
  // An LLMU VM never pairs long with the backup-style V3.
  EXPECT_LT(matrix.percent(0, 2), 30.0);
}

TEST(EndToEnd, MigrationCountsStayLow) {
  Testbed tb;
  c::ControllerOptions opts;
  opts.relocate_all = true;
  opts.requests.base_rate_per_hour = 20;
  c::Controller controller(tb.cluster, tb.sw, opts);
  controller.install();
  controller.pretrain_models(21 * 24);
  controller.run_hours(3 * 24);
  // Fig. 2: single-digit migrations per VM despite hourly relocation.
  for (const auto& vm : tb.cluster.vms()) {
    EXPECT_LE(vm->migration_count(), 9) << vm->name();
  }
}

TEST(EndToEnd, EnergyOrderingMatchesPaper) {
  // Drowsy-DC < Neat+S3 < Neat-without-suspension (18/24/40 kWh shape).
  double kwh[3] = {0, 0, 0};
  for (int pass = 0; pass < 3; ++pass) {
    Testbed tb;
    c::ControllerOptions opts;
    opts.requests.base_rate_per_hour = 40;
    opts.relocate_all = pass == 0;
    opts.drowsy.suspend.enabled = pass != 2;
    opts.drowsy.suspend.use_grace_time = pass == 0;
    c::Controller controller(tb.cluster, tb.sw, opts);
    b::NeatConsolidation neat(tb.cluster);
    if (pass != 0) controller.set_policy(&neat);
    controller.install();
    controller.pretrain_models(14 * 24);
    controller.run_hours(3 * 24);
    kwh[pass] = tb.cluster.total_kwh();
  }
  EXPECT_LT(kwh[0], kwh[1]) << "Drowsy-DC must beat Neat+S3";
  EXPECT_LT(kwh[1], kwh[2]) << "suspension must beat no suspension";
  EXPECT_LT(kwh[0], 0.6 * kwh[2]) << "roughly the paper's ~55% saving";
}

TEST(EndToEnd, GraceTimePreventsOscillation) {
  // A flapping service: 1 active hour, 1 idle hour, repeatedly — with an
  // aggressive check interval, no grace time causes many suspend cycles.
  auto run = [](bool grace) {
    s::EventQueue queue;
    s::Cluster cluster(queue);
    n::SdnSwitch sw(queue);
    cluster.add_host(s::HostSpec{"P1", 8, 16384, 2});
    std::vector<double> flap(600);
    for (std::size_t h = 0; h < flap.size(); ++h) flap[h] = h % 2 == 0 ? 0.3 : 0.0;
    cluster.add_vm(s::VmSpec{"V1", 2, 6144}, t::ActivityTrace(std::move(flap)));
    cluster.place(0, 0);
    c::ControllerOptions opts;
    opts.drowsy.suspend.use_grace_time = grace;
    opts.drowsy.suspend.check_interval = u::seconds(10);
    opts.requests.base_rate_per_hour = 200;
    c::Controller controller(cluster, sw, opts);
    controller.install();
    controller.run_hours(48);
    return cluster.hosts()[0]->suspend_count();
  };
  const int with_grace = run(true);
  const int without_grace = run(false);
  EXPECT_LE(with_grace, without_grace)
      << "grace time must not increase suspend/resume churn";
}

TEST(EndToEnd, WakingModuleFailoverKeepsWakesWorking) {
  // Kill the primary waking module mid-run: the heartbeat monitor must
  // promote the mirrored standby, and hosts must still wake for requests
  // afterwards (paper §V fault tolerance).
  s::EventQueue queue;
  s::Cluster cluster(queue);
  n::SdnSwitch sw(queue);
  cluster.add_host(s::HostSpec{"P1", 8, 16384, 2});
  // Idle for 5 hours, active the 6th — plenty of suspension with
  // wake-ups on every active burst.
  std::vector<double> pattern(100 * 24, 0.0);
  for (std::size_t h = 5; h < pattern.size(); h += 6) pattern[h] = 0.4;
  cluster.add_vm(s::VmSpec{"V1", 2, 6144}, t::ActivityTrace(std::move(pattern)));
  cluster.place(0, 0);

  c::ControllerOptions opts;
  opts.requests.base_rate_per_hour = 120;
  opts.waking_standby = true;
  c::Controller controller(cluster, sw, opts);
  controller.install();

  // Run 12 h healthy, then crash the primary and run 12 h more.
  controller.run_hours(12);
  const auto wakes_before = controller.waking_primary().stats().packet_wakes;
  EXPECT_GT(wakes_before, 0u);
  controller.waking_primary().deactivate();   // the crash
  controller.waking_pair_kill_primary();      // stop its heartbeats
  controller.run_hours(12);

  ASSERT_NE(controller.waking_standby(), nullptr);
  EXPECT_TRUE(controller.waking_standby()->active())
      << "heartbeat failover must promote the standby";
  EXPECT_GT(controller.waking_standby()->stats().packet_wakes, 0u)
      << "the promoted standby must keep waking hosts";
  // Requests kept completing after the failover.
  EXPECT_GT(controller.fabric().stats().total, 0u);
  EXPECT_GT(controller.fabric().stats().sla_attainment(5000.0), 0.99)
      << "no request may hang waiting for a dead waking module";
}

TEST(EndToEnd, SlaHoldsUnderDrowsyDc) {
  Testbed tb;
  c::ControllerOptions opts;
  opts.relocate_all = true;
  opts.requests.base_rate_per_hour = 60;
  c::Controller controller(tb.cluster, tb.sw, opts);
  controller.install();
  controller.pretrain_models(14 * 24);
  controller.run_hours(2 * 24);
  const auto& stats = controller.fabric().stats();
  ASSERT_GT(stats.total, 100u);
  // Paper: >99% of requests within 200 ms; wake-ups cost ≈0.8–1.5 s.
  EXPECT_GT(stats.sla_attainment(200.0), 0.95);
  if (!stats.wake_latencies_ms.empty()) {
    EXPECT_LT(stats.wake_latencies_ms.max(), 10'000.0);
  }
}
