#include "metrics/colocation.hpp"

#include <gtest/gtest.h>

#include "trace/trace.hpp"

namespace m = drowsy::metrics;
namespace s = drowsy::sim;
namespace t = drowsy::trace;

namespace {

struct ColocationFixture : ::testing::Test {
  s::EventQueue q;
  s::Cluster cluster{q};

  void SetUp() override {
    cluster.add_host(s::HostSpec{"P1", 8, 16384, 2});
    cluster.add_host(s::HostSpec{"P2", 8, 16384, 2});
    for (int i = 0; i < 4; ++i) {
      cluster.add_vm(s::VmSpec{"V" + std::to_string(i + 1), 2, 6144},
                     t::ActivityTrace({0.0}));
    }
  }
};

}  // namespace

TEST_F(ColocationFixture, DiagonalIsHundred) {
  m::ColocationMatrix matrix(4);
  EXPECT_DOUBLE_EQ(matrix.percent(0, 0), 100.0);
  EXPECT_DOUBLE_EQ(matrix.percent(2, 2), 100.0);
}

TEST_F(ColocationFixture, NoSamplesMeansZero) {
  m::ColocationMatrix matrix(4);
  EXPECT_DOUBLE_EQ(matrix.percent(0, 1), 0.0);
}

TEST_F(ColocationFixture, TracksPairsOverSamples) {
  cluster.place(0, 0);
  cluster.place(1, 0);
  cluster.place(2, 1);
  cluster.place(3, 1);
  m::ColocationMatrix matrix(4);
  matrix.sample(cluster);
  matrix.sample(cluster);
  // Swap V2 and V3, sample twice more.
  ASSERT_TRUE(cluster.apply_assignment({{1, 1}, {2, 0}}));
  matrix.sample(cluster);
  matrix.sample(cluster);

  EXPECT_DOUBLE_EQ(matrix.percent(0, 1), 50.0);
  EXPECT_DOUBLE_EQ(matrix.percent(0, 2), 50.0);
  EXPECT_DOUBLE_EQ(matrix.percent(2, 3), 50.0);
  EXPECT_DOUBLE_EQ(matrix.percent(1, 0), matrix.percent(0, 1)) << "symmetric";
  EXPECT_EQ(matrix.samples(), 4u);
}

TEST_F(ColocationFixture, UnplacedVmsNeverColocated) {
  cluster.place(0, 0);
  m::ColocationMatrix matrix(4);
  matrix.sample(cluster);
  for (int j = 1; j < 4; ++j) EXPECT_DOUBLE_EQ(matrix.percent(0, j), 0.0);
}

TEST_F(ColocationFixture, TableRendersAllVmsAndMigrations) {
  cluster.place(0, 0);
  cluster.place(1, 0);
  cluster.place(2, 1);
  cluster.place(3, 1);
  m::ColocationMatrix matrix(4);
  matrix.sample(cluster);
  const std::string table = matrix.to_table(cluster);
  EXPECT_NE(table.find("V1"), std::string::npos);
  EXPECT_NE(table.find("V4"), std::string::npos);
  EXPECT_NE(table.find("#mig"), std::string::npos);
}
