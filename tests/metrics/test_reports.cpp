#include "metrics/reports.hpp"

#include <gtest/gtest.h>

#include "net/sdn_switch.hpp"
#include "trace/trace.hpp"

namespace m = drowsy::metrics;
namespace s = drowsy::sim;
namespace u = drowsy::util;
namespace t = drowsy::trace;

namespace {

struct ReportsFixture : ::testing::Test {
  s::EventQueue q;
  s::Cluster cluster{q};
  drowsy::net::SdnSwitch sw{q};

  void SetUp() override {
    cluster.add_host(s::HostSpec{"P1", 8, 16384, 2});
    cluster.add_host(s::HostSpec{"P2", 8, 16384, 2});
  }
};

}  // namespace

TEST_F(ReportsFixture, SuspendFractionsComputed) {
  cluster.host(0)->begin_suspend();
  q.run_all();
  q.run_until(u::hours(10.0));
  const auto row = m::suspend_fractions("drowsy", cluster, {0, 1}, 0);
  ASSERT_EQ(row.per_host.size(), 2u);
  EXPECT_GT(row.per_host[0], 0.99);
  EXPECT_DOUBLE_EQ(row.per_host[1], 0.0);
  EXPECT_NEAR(row.global, row.per_host[0] / 2.0, 0.01);
}

TEST_F(ReportsFixture, SuspendFractionTableRenders) {
  q.run_until(u::hours(1.0));
  const auto row = m::suspend_fractions("neat", cluster, {0, 1}, 0);
  const std::string table = m::suspend_fraction_table({row}, cluster, {0, 1});
  EXPECT_NE(table.find("neat"), std::string::npos);
  EXPECT_NE(table.find("P1"), std::string::npos);
  EXPECT_NE(table.find("Global"), std::string::npos);
}

TEST_F(ReportsFixture, EnergySummaryPullsClusterState) {
  q.run_until(u::hours(2.0));
  s::RequestFabric fabric(cluster, sw);
  const auto summary = m::summarize("drowsy", cluster, fabric);
  EXPECT_EQ(summary.algorithm, "drowsy");
  // Two idle hosts for 2 h: 2 × 50 W × 2 h = 0.2 kWh.
  EXPECT_NEAR(summary.kwh, 0.2, 1e-6);
  EXPECT_EQ(summary.requests, 0u);
  EXPECT_DOUBLE_EQ(summary.sla_attainment, 1.0);
}

TEST_F(ReportsFixture, EnergyTableRendersRows) {
  s::RequestFabric fabric(cluster, sw);
  const auto a = m::summarize("drowsy-dc", cluster, fabric);
  const auto b = m::summarize("neat-s3", cluster, fabric);
  const std::string table = m::energy_table({a, b});
  EXPECT_NE(table.find("drowsy-dc"), std::string::npos);
  EXPECT_NE(table.find("neat-s3"), std::string::npos);
  EXPECT_NE(table.find("kWh"), std::string::npos);
}
