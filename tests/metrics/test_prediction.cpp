#include "metrics/prediction.hpp"

#include <gtest/gtest.h>

namespace m = drowsy::metrics;

TEST(ConfusionCounter, CountsAllFourCells) {
  m::ConfusionCounter c;
  c.add(true, true);    // TP
  c.add(true, false);   // FP
  c.add(false, true);   // FN
  c.add(false, false);  // TN
  EXPECT_EQ(c.tp(), 1u);
  EXPECT_EQ(c.fp(), 1u);
  EXPECT_EQ(c.fn(), 1u);
  EXPECT_EQ(c.tn(), 1u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(ConfusionCounter, TableThreeFormulas) {
  // Table III: recall = TP/(TP+FN), precision = TP/(TP+FP),
  // F = 2rp/(r+p), specificity = TN/(TN+FP).
  m::ConfusionCounter c;
  for (int i = 0; i < 8; ++i) c.add(true, true);    // TP = 8
  for (int i = 0; i < 2; ++i) c.add(true, false);   // FP = 2
  for (int i = 0; i < 4; ++i) c.add(false, true);   // FN = 4
  for (int i = 0; i < 6; ++i) c.add(false, false);  // TN = 6
  EXPECT_DOUBLE_EQ(c.recall(), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(c.precision(), 8.0 / 10.0);
  EXPECT_DOUBLE_EQ(c.specificity(), 6.0 / 8.0);
  const double r = 8.0 / 12.0, p = 8.0 / 10.0;
  EXPECT_DOUBLE_EQ(c.f_measure(), 2 * r * p / (r + p));
}

TEST(ConfusionCounter, UndefinedMetricsDefaultToOne) {
  m::ConfusionCounter c;
  EXPECT_DOUBLE_EQ(c.recall(), 1.0);
  EXPECT_DOUBLE_EQ(c.precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.specificity(), 1.0);
  // All-negative stream: specificity meaningful, recall/precision default.
  c.add(false, false);
  EXPECT_DOUBLE_EQ(c.specificity(), 1.0);
  EXPECT_DOUBLE_EQ(c.recall(), 1.0);
}

TEST(ConfusionCounter, PerfectPredictor) {
  m::ConfusionCounter c;
  for (int i = 0; i < 10; ++i) c.add(i % 2 == 0, i % 2 == 0);
  EXPECT_DOUBLE_EQ(c.f_measure(), 1.0);
  EXPECT_DOUBLE_EQ(c.specificity(), 1.0);
}

TEST(ConfusionCounter, RemoveUndoesAdd) {
  m::ConfusionCounter c;
  c.add(true, true);
  c.add(true, false);
  c.remove(true, false);
  EXPECT_EQ(c.tp(), 1u);
  EXPECT_EQ(c.fp(), 0u);
  EXPECT_DOUBLE_EQ(c.precision(), 1.0);
}

TEST(WindowedConfusion, SlidesOutOldEntries) {
  m::WindowedConfusion w(3);
  w.add(true, false);  // FP — will slide out
  w.add(true, true);
  w.add(true, true);
  EXPECT_EQ(w.counts().fp(), 1u);
  w.add(true, true);  // evicts the FP
  EXPECT_EQ(w.counts().fp(), 0u);
  EXPECT_EQ(w.counts().tp(), 3u);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.counts().precision(), 1.0);
}

TEST(WindowedConfusion, WindowOfOne) {
  m::WindowedConfusion w(1);
  w.add(true, true);
  w.add(false, false);
  EXPECT_EQ(w.counts().total(), 1u);
  EXPECT_EQ(w.counts().tn(), 1u);
}

TEST(WindowedConfusion, MatchesUnwindowedBeforeFull) {
  m::WindowedConfusion w(100);
  m::ConfusionCounter c;
  for (int i = 0; i < 50; ++i) {
    const bool pred = i % 3 == 0;
    const bool actual = i % 2 == 0;
    w.add(pred, actual);
    c.add(pred, actual);
  }
  EXPECT_EQ(w.counts().tp(), c.tp());
  EXPECT_EQ(w.counts().fp(), c.fp());
  EXPECT_EQ(w.counts().fn(), c.fn());
  EXPECT_EQ(w.counts().tn(), c.tn());
}
