#include "replay/dataset.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rp = drowsy::replay;
namespace tr = drowsy::trace;

TEST(DatasetFormat, NamesRoundTrip) {
  EXPECT_EQ(rp::dataset_format_from_string("azure"), rp::DatasetFormat::AzureVm);
  EXPECT_EQ(rp::dataset_format_from_string("google"), rp::DatasetFormat::GoogleTask);
  EXPECT_STREQ(rp::to_string(rp::DatasetFormat::AzureVm), "azure");
  EXPECT_STREQ(rp::to_string(rp::DatasetFormat::GoogleTask), "google");
  EXPECT_THROW(static_cast<void>(rp::dataset_format_from_string("borg")),
               std::invalid_argument);
}

TEST(FoldAzure, AveragesReadingsWithinAnHour) {
  std::stringstream in(
      "timestamp,vm_id,core_count,avg_cpu\n"
      "0,vm-a,2,40\n"
      "1800,vm-a,2,60\n"
      "3600,vm-a,2,10\n");
  const auto traces = rp::fold_azure(in);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].name(), "vm-a");
  ASSERT_EQ(traces[0].size(), 2u);
  EXPECT_DOUBLE_EQ(traces[0].hours()[0], 0.5);  // mean of 40% and 60%
  EXPECT_DOUBLE_EQ(traces[0].hours()[1], 0.1);
}

TEST(FoldAzure, GapsInsideLifetimeBecomeIdleHours) {
  // Readings at hour 0 and hour 3; hours 1-2 have no readings at all.
  std::stringstream in(
      "timestamp,vm_id,core_count,avg_cpu\n"
      "0,vm-a,2,80\n"
      "10800,vm-a,2,80\n");
  const auto traces = rp::fold_azure(in);
  ASSERT_EQ(traces[0].size(), 4u);
  EXPECT_DOUBLE_EQ(traces[0].hours()[0], 0.8);
  EXPECT_DOUBLE_EQ(traces[0].hours()[1], 0.0);
  EXPECT_DOUBLE_EQ(traces[0].hours()[2], 0.0);
  EXPECT_DOUBLE_EQ(traces[0].hours()[3], 0.8);
}

TEST(FoldAzure, OutOfRangeValuesClampInto01) {
  std::stringstream in(
      "timestamp,vm_id,core_count,avg_cpu\n"
      "0,vm-a,2,150\n"
      "3600,vm-a,2,-5\n");
  const auto traces = rp::fold_azure(in);
  EXPECT_DOUBLE_EQ(traces[0].hours()[0], 1.0);
  EXPECT_DOUBLE_EQ(traces[0].hours()[1], 0.0);
}

TEST(FoldAzure, ColumnOrderFollowsFirstAppearance) {
  std::stringstream in(
      "timestamp,vm_id,core_count,avg_cpu\n"
      "0,vm-b,2,50\n"
      "0,vm-a,2,50\n"
      "3600,vm-b,2,50\n");
  const auto traces = rp::fold_azure(in);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].name(), "vm-b");
  EXPECT_EQ(traces[1].name(), "vm-a");
}

TEST(FoldAzure, RowsMayArriveOutOfOrder) {
  std::stringstream sorted(
      "timestamp,vm_id,core_count,avg_cpu\n"
      "0,vm-a,2,20\n"
      "3600,vm-a,2,40\n");
  std::stringstream shuffled(
      "timestamp,vm_id,core_count,avg_cpu\n"
      "3600,vm-a,2,40\n"
      "0,vm-a,2,20\n");
  EXPECT_EQ(rp::fold_azure(sorted)[0].hours(), rp::fold_azure(shuffled)[0].hours());
}

TEST(FoldAzure, ToleratesCrlfBomAndBlankLines) {
  std::stringstream in(
      "\xEF\xBB\xBF"
      "timestamp,vm_id,core_count,avg_cpu\r\n"
      "0,vm-a,2,50\r\n"
      "\r\n"
      "\n");
  const auto traces = rp::fold_azure(in);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_DOUBLE_EQ(traces[0].hours()[0], 0.5);
}

TEST(FoldAzure, MalformedRowsReportTheLineNumber) {
  std::stringstream bad_number(
      "timestamp,vm_id,core_count,avg_cpu\n"
      "0,vm-a,2,50\n"
      "3600,vm-a,2,banana\n");
  try {
    static_cast<void>(rp::fold_azure(bad_number));
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("row 3"), std::string::npos) << e.what();
  }
  std::stringstream bad_header("time,vm\n");
  EXPECT_THROW(static_cast<void>(rp::fold_azure(bad_header)), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW(static_cast<void>(rp::fold_azure(empty)), std::runtime_error);
}

TEST(FoldGoogle, WeightsRatesByHourOverlap) {
  // One task: 0.8 for the first half hour of hour 0, then nothing.
  // Uncovered time counts as idle, so hour 0 folds to 0.8 * 1800/3600.
  std::stringstream in(
      "start_time,end_time,job_id,task_index,cpu_rate\n"
      "0,1800,10,0,0.8\n");
  const auto traces = rp::fold_google(in);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].name(), "j10-t0");
  ASSERT_EQ(traces[0].size(), 1u);
  EXPECT_DOUBLE_EQ(traces[0].hours()[0], 0.4);
}

TEST(FoldGoogle, SegmentsSpanningHoursSplitCorrectly) {
  // 1.0 from 00:30 to 01:30: half of hour 0 and half of hour 1.
  std::stringstream in(
      "start_time,end_time,job_id,task_index,cpu_rate\n"
      "1800,5400,7,3,1.0\n");
  const auto traces = rp::fold_google(in);
  EXPECT_EQ(traces[0].name(), "j7-t3");
  ASSERT_EQ(traces[0].size(), 2u);
  EXPECT_DOUBLE_EQ(traces[0].hours()[0], 0.5);
  EXPECT_DOUBLE_EQ(traces[0].hours()[1], 0.5);
}

TEST(FoldGoogle, RejectsInvertedIntervals) {
  std::stringstream in(
      "start_time,end_time,job_id,task_index,cpu_rate\n"
      "3600,3600,1,0,0.5\n");
  EXPECT_THROW(static_cast<void>(rp::fold_google(in)), std::runtime_error);
}

TEST(Summaries, ClassifyAndCountThePopulation) {
  std::vector<tr::ActivityTrace> traces;
  // Long-lived, mostly idle -> LLMI; long-lived busy -> LLMU;
  // short-lived -> SLMU (classify's lifetime cut is 168h).
  traces.emplace_back(std::vector<double>(400, 0.001), "idle");
  traces.emplace_back(std::vector<double>(400, 0.9), "busy");
  traces.emplace_back(std::vector<double>(48, 0.9), "short");
  const auto columns = rp::summarize_columns(traces);
  ASSERT_EQ(columns.size(), 3u);
  EXPECT_EQ(columns[0].vm_class, tr::VmClass::Llmi);
  EXPECT_EQ(columns[1].vm_class, tr::VmClass::Llmu);
  EXPECT_EQ(columns[2].vm_class, tr::VmClass::Slmu);
  EXPECT_EQ(columns[1].hours, 400u);
  EXPECT_NEAR(columns[1].mean_activity, 0.9, 1e-12);  // summation order varies with -O3
  const rp::ClassCounts counts = rp::count_classes(columns);
  EXPECT_EQ(counts.slmu, 1u);
  EXPECT_EQ(counts.llmu, 1u);
  EXPECT_EQ(counts.llmi, 1u);
}

TEST(Samples, AreDeterministicPerSeedAndDifferAcrossSeeds) {
  rp::SampleOptions opts;
  opts.vms = 3;
  opts.days = 2;
  std::ostringstream a, b, c;
  rp::write_azure_sample(a, opts);
  rp::write_azure_sample(b, opts);
  opts.seed = 99;
  rp::write_azure_sample(c, opts);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str(), c.str());

  opts.seed = 7;
  std::ostringstream g1, g2;
  rp::write_google_sample(g1, opts);
  rp::write_google_sample(g2, opts);
  EXPECT_EQ(g1.str(), g2.str());
}

TEST(Samples, ConvertedAzureSliceCoversAllThreeClasses) {
  // The fixture recipe: profiles cycle LLMU/LLMI/SLMU, so any vms >= 3
  // sample folds into a population with every class present.
  rp::SampleOptions opts;
  opts.vms = 6;
  opts.days = 14;
  std::ostringstream raw;
  rp::write_azure_sample(raw, opts);
  std::istringstream in(raw.str());
  const auto columns = rp::summarize_columns(rp::fold_azure(in));
  const rp::ClassCounts counts = rp::count_classes(columns);
  EXPECT_EQ(counts.llmu, 2u);
  EXPECT_EQ(counts.llmi, 2u);
  EXPECT_EQ(counts.slmu, 2u);
}

TEST(Samples, ConvertedGoogleSliceCoversAllThreeClasses) {
  rp::SampleOptions opts;
  opts.vms = 5;
  opts.days = 10;
  opts.seed = 11;
  std::ostringstream raw;
  rp::write_google_sample(raw, opts);
  std::istringstream in(raw.str());
  const auto columns = rp::summarize_columns(rp::fold_google(in));
  const rp::ClassCounts counts = rp::count_classes(columns);
  EXPECT_GE(counts.llmu, 1u);
  EXPECT_GE(counts.llmi, 1u);
  EXPECT_GE(counts.slmu, 1u);
}
