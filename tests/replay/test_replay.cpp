#include "replay/replay.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>

#include "scenario/scenario.hpp"

namespace rp = drowsy::replay;
namespace sc = drowsy::scenario;

namespace {

std::string temp_path(const std::string& name) { return ::testing::TempDir() + "/" + name; }

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f) << path;
  f << bytes;
}

constexpr const char* kTwoColumns =
    "alpha,beta\n"
    "0.1,0.9\n"
    "0.2,0.8\n"
    "0.3,0.7\n"
    "0.4,0.6\n";

}  // namespace

TEST(ContentHash, DistinguishesBytesAndIsStable) {
  EXPECT_EQ(rp::content_hash("abc"), rp::content_hash("abc"));
  EXPECT_NE(rp::content_hash("abc"), rp::content_hash("abd"));
  EXPECT_NE(rp::content_hash(""), rp::content_hash(std::string_view("\0", 1)));
  // FNV-1a 64 known value: the offset basis for empty input.
  EXPECT_EQ(rp::content_hash(""), 0xcbf29ce484222325ULL);
}

TEST(LoadReplayFile, ParsesColumnsAndHashesBytes) {
  const std::string path = temp_path("replay_load.csv");
  write_file(path, kTwoColumns);
  const auto file = rp::load_replay_file(path);
  ASSERT_EQ(file->columns.size(), 2u);
  EXPECT_EQ(file->columns[0].name(), "alpha");
  EXPECT_EQ(file->columns[1].name(), "beta");
  EXPECT_EQ(file->hash, rp::content_hash(kTwoColumns));
  EXPECT_NE(file->find("beta"), nullptr);
  EXPECT_EQ(file->find("gamma"), nullptr);
}

TEST(LoadReplayFile, MemoizesUntilTheBytesChange) {
  const std::string path = temp_path("replay_memo.csv");
  write_file(path, kTwoColumns);
  const auto first = rp::load_replay_file(path);
  const auto again = rp::load_replay_file(path);
  EXPECT_EQ(first.get(), again.get()) << "unchanged bytes reuse the parse";

  write_file(path, "alpha\n0.5\n");
  const auto changed = rp::load_replay_file(path);
  EXPECT_NE(changed.get(), first.get());
  EXPECT_NE(changed->hash, first->hash);
  ASSERT_EQ(changed->columns.size(), 1u);
}

TEST(LoadReplayFile, RejectsMissingEmptyAndUnparsable) {
  EXPECT_THROW(static_cast<void>(rp::load_replay_file(temp_path("absent.csv"))),
               std::runtime_error);
  const std::string empty = temp_path("replay_empty.csv");
  write_file(empty, "");
  EXPECT_THROW(static_cast<void>(rp::load_replay_file(empty)), std::runtime_error);
  const std::string headers_only = temp_path("replay_headers.csv");
  write_file(headers_only, "a,b\n");
  EXPECT_THROW(static_cast<void>(rp::load_replay_file(headers_only)), std::runtime_error);
}

TEST(ResolveTracePath, FallsBackToTraceRoot) {
  const std::string root = ::testing::TempDir();
  const std::string path = temp_path("replay_root.csv");
  write_file(path, kTwoColumns);
  ::setenv("DROWSY_TRACE_ROOT", root.c_str(), 1);
  // TempDir() may or may not end in '/'; the resolver joins without doubling.
  const std::string joined =
      (root.back() == '/' ? root : root + "/") + "replay_root.csv";
  EXPECT_EQ(rp::resolve_trace_path("replay_root.csv"), joined);
  // A path that exists as given wins over the root.
  EXPECT_EQ(rp::resolve_trace_path(path), path);
  // Unresolvable paths come back unchanged (the load reports both tries).
  EXPECT_EQ(rp::resolve_trace_path("no/such/file.csv"), "no/such/file.csv");
  ::unsetenv("DROWSY_TRACE_ROOT");
}

TEST(SelectColumn, ByNameByVariantAndWrapping) {
  const std::string path = temp_path("replay_select.csv");
  write_file(path, kTwoColumns);
  const auto file = rp::load_replay_file(path);

  EXPECT_EQ(rp::select_column(*file, "beta", 0, 1).name(), "beta");
  EXPECT_EQ(rp::select_column(*file, "", 0, 1).name(), "alpha");
  EXPECT_EQ(rp::select_column(*file, "", 1, 1).name(), "beta");
  EXPECT_EQ(rp::select_column(*file, "", 2, 1).name(), "alpha") << "variant wraps";
  // An explicit name beats the variant index.
  EXPECT_EQ(rp::select_column(*file, "alpha", 1, 1).name(), "alpha");

  try {
    static_cast<void>(rp::select_column(*file, "gamma", 0, 1));
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("gamma"), std::string::npos) << msg;
    EXPECT_NE(msg.find("alpha"), std::string::npos) << "lists available columns: " << msg;
  }
}

TEST(SelectColumn, DownsampleMeanPoolsBlocks) {
  const std::string path = temp_path("replay_downsample.csv");
  write_file(path, kTwoColumns);
  const auto file = rp::load_replay_file(path);
  const auto pooled = rp::select_column(*file, "alpha", 0, 2);
  ASSERT_EQ(pooled.size(), 2u);
  EXPECT_DOUBLE_EQ(pooled.hours()[0], 0.15);  // mean(0.1, 0.2)
  EXPECT_DOUBLE_EQ(pooled.hours()[1], 0.35);  // mean(0.3, 0.4)
  // A partial tail pools over the remainder only.
  const auto tail = rp::select_column(*file, "alpha", 0, 3);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_DOUBLE_EQ(tail.hours()[0], 0.2);  // mean(0.1, 0.2, 0.3)
  EXPECT_DOUBLE_EQ(tail.hours()[1], 0.4);
  EXPECT_EQ(tail.name(), "alpha");
}

TEST(Materialize, FileReplayIsSeedIndependent) {
  const std::string path = temp_path("replay_materialize.csv");
  write_file(path, kTwoColumns);
  sc::TraceSpec spec;
  spec.kind = sc::TraceKind::FileReplay;
  spec.path = path;
  spec.select = "beta";
  const auto a = sc::materialize(spec, 1);
  const auto b = sc::materialize(spec, 999);
  EXPECT_EQ(a.hours(), b.hours()) << "the file is the workload; seeds are ignored";
  EXPECT_EQ(a.name(), "beta");
}
