#include "scenario/batch_runner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sc = drowsy::scenario;

namespace {

/// A deliberately small scenario so batch tests stay fast: 2 hosts,
/// 4 VMs (one sleepy backup pair, one busy pair), one simulated day.
sc::ScenarioSpec tiny_scenario(const std::string& name, std::uint64_t seed) {
  sc::ScenarioSpec s;
  s.name = name;
  s.hosts = 2;
  s.host_template = {"", 8, 16384, 2};
  s.vms = {
      {.name_prefix = "idle",
       .count = 2,
       .workload = {.kind = sc::TraceKind::DailyBackup, .hour = 2}},
      {.name_prefix = "busy",
       .count = 2,
       .workload = {.kind = sc::TraceKind::LlmuConstant, .noise = 0.02}},
  };
  s.pretrain_days = 2;
  s.duration_days = 1;
  s.request_rate_per_hour = 30.0;
  s.seed = seed;
  return s;
}

}  // namespace

TEST(BatchRunner, CrossEnumeratesDeterministically) {
  const std::vector<sc::ScenarioSpec> specs = {tiny_scenario("a", 1),
                                               tiny_scenario("b", 2)};
  const std::vector<sc::Policy> policies = {sc::Policy::DrowsyDc, sc::Policy::NeatS3};
  const auto jobs = sc::cross(specs, policies, 3);
  ASSERT_EQ(jobs.size(), 2u * 2u * 3u);
  // First replicate uses the spec seed; later replicates derive from it.
  EXPECT_EQ(jobs[0].seed, 1u);
  EXPECT_EQ(jobs[1].seed, sc::mix_seed(1, 1));
  EXPECT_EQ(jobs[2].seed, sc::mix_seed(1, 2));
  const auto again = sc::cross(specs, policies, 3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].seed, again[i].seed);
    EXPECT_EQ(jobs[i].spec.name, again[i].spec.name);
  }
}

TEST(BatchRunner, ResultsArriveInJobOrder) {
  sc::BatchRunner runner(4);
  const auto jobs =
      sc::cross({tiny_scenario("tiny", 5)},
                {sc::Policy::DrowsyDc, sc::Policy::NeatS3, sc::Policy::Oasis}, 1);
  const auto results = runner.run(jobs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].policy, "drowsy-dc");
  EXPECT_EQ(results[1].policy, "neat+s3");
  EXPECT_EQ(results[2].policy, "oasis");
  for (const auto& r : results) {
    EXPECT_EQ(r.scenario, "tiny");
    EXPECT_EQ(r.simulated_hours, 24);
    EXPECT_GT(r.kwh, 0.0);
    EXPECT_GT(r.requests, 0u);
    EXPECT_GE(r.sla_attainment, 0.0);
    EXPECT_LE(r.sla_attainment, 1.0);
    EXPECT_GE(r.suspend_fraction, 0.0);
    EXPECT_LE(r.suspend_fraction, 1.0);
  }
}

TEST(BatchRunner, FixedSeedIsIdenticalAtOneAndManyThreads) {
  // The acceptance bar for the whole subsystem: the batch output is
  // bit-identical regardless of worker-thread count.
  const auto jobs = sc::cross({tiny_scenario("det", 21)},
                              {sc::Policy::DrowsyDc, sc::Policy::NeatS3}, 2);
  sc::BatchRunner serial(1);
  sc::BatchRunner wide(4);
  const auto a = serial.run(jobs);
  const auto b = wide.run(jobs);
  EXPECT_EQ(sc::to_csv(a), sc::to_csv(b));
  EXPECT_EQ(sc::to_json(a), sc::to_json(b));
  EXPECT_EQ(sc::to_csv(sc::aggregate(a)), sc::to_csv(sc::aggregate(b)));
  // And re-running the same pool reproduces itself.
  const auto c = wide.run(jobs);
  EXPECT_EQ(sc::to_csv(b), sc::to_csv(c));
}

TEST(BatchRunner, DifferentSeedsDifferentRuns) {
  sc::BatchRunner runner(2);
  const sc::ScenarioSpec spec = tiny_scenario("seeded", 31);
  const auto results = runner.run({{spec, sc::Policy::DrowsyDc, 100},
                                   {spec, sc::Policy::DrowsyDc, 200}});
  ASSERT_EQ(results.size(), 2u);
  // Workload seeds are derived from the run seed, so the request streams
  // (and almost surely the energy figures) differ.
  EXPECT_NE(results[0].requests, results[1].requests);
}

TEST(BatchRunner, AggregateMeansReplicates) {
  sc::BatchRunner runner(4);
  const auto jobs = sc::cross({tiny_scenario("agg", 41)}, {sc::Policy::DrowsyDc}, 3);
  const auto results = runner.run(jobs);
  const auto rows = sc::aggregate(results);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].runs, 3u);
  double kwh_sum = 0.0;
  std::uint64_t req_sum = 0;
  for (const auto& r : results) {
    kwh_sum += r.kwh;
    req_sum += r.requests;
  }
  EXPECT_NEAR(rows[0].kwh_mean, kwh_sum / 3.0, 1e-9);
  EXPECT_EQ(rows[0].requests_total, req_sum);
  EXPECT_GE(rows[0].kwh_max, rows[0].kwh_min);
  EXPECT_GE(rows[0].kwh_mean, rows[0].kwh_min);
  EXPECT_LE(rows[0].kwh_mean, rows[0].kwh_max);
}

TEST(BatchRunner, InvalidSpecInBatchRethrowsOnCaller) {
  sc::BatchRunner runner(2);
  sc::ScenarioSpec bad = tiny_scenario("bad", 1);
  bad.vms[0].count = 50;  // cannot fit 2 hosts x 2 slots
  std::vector<sc::BatchJob> jobs = sc::cross({tiny_scenario("good", 1)},
                                             {sc::Policy::DrowsyDc}, 1);
  jobs.push_back({bad, sc::Policy::DrowsyDc, 1});
  EXPECT_THROW(static_cast<void>(runner.run(jobs)), std::invalid_argument);
}

TEST(BatchRunner, CsvAndJsonAreWellFormed) {
  sc::BatchRunner runner(2);
  const auto results =
      runner.run(sc::cross({tiny_scenario("emit", 51)}, {sc::Policy::DrowsyDc}, 2));
  const std::string csv = sc::to_csv(results);
  // Header + one line per run.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_EQ(csv.rfind("scenario,policy,seed,", 0), 0u);
  EXPECT_NE(csv.find("emit,drowsy-dc,"), std::string::npos);

  const std::string json = sc::to_json(results);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"scenario\": \"emit\""), std::string::npos);
  EXPECT_NE(json.find("\"kwh\": "), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  const auto rows = sc::aggregate(results);
  EXPECT_NE(sc::to_csv(rows).find("kwh_mean"), std::string::npos);
  EXPECT_NE(sc::to_json(rows).find("\"runs\": 2"), std::string::npos);
  EXPECT_NE(sc::aggregate_table(rows).find("emit"), std::string::npos);
}
