#include "scenario/trace_cache.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <thread>
#include <vector>

#include "scenario/batch_runner.hpp"

namespace sc = drowsy::scenario;

namespace {

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f) << path;
  f << bytes;
}

sc::ScenarioSpec tiny_scenario(std::uint64_t seed) {
  sc::ScenarioSpec s;
  s.name = "cache-tiny";
  s.hosts = 2;
  s.host_template = {"", 8, 16384, 2};
  s.vms = {
      {.name_prefix = "idle",
       .count = 2,
       .workload = {.kind = sc::TraceKind::DailyBackup, .hour = 2}},
      {.name_prefix = "busy",
       .count = 2,
       .workload = {.kind = sc::TraceKind::LlmuConstant, .noise = 0.02}},
  };
  s.pretrain_days = 2;
  s.duration_days = 1;
  s.request_rate_per_hour = 30.0;
  s.seed = seed;
  return s;
}

}  // namespace

TEST(TraceCache, ReturnsExactlyWhatMaterializeWould) {
  sc::TraceCache cache;
  sc::TraceSpec spec;
  spec.kind = sc::TraceKind::OfficeHours;
  spec.noise = 0.05;
  const auto cached = cache.get(spec, 99);
  const auto direct = sc::materialize(spec, 99);
  EXPECT_EQ(cached->hours(), direct.hours());
  EXPECT_EQ(cached->name(), direct.name());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(TraceCache, HitsOnRepeatAndPinnedSeedNormalization) {
  sc::TraceCache cache;
  sc::TraceSpec spec;
  spec.kind = sc::TraceKind::DailyBackup;
  const auto first = cache.get(spec, 7);
  const auto again = cache.get(spec, 7);
  EXPECT_EQ(first.get(), again.get());  // same shared object, not a rebuild
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // A pinned seed equal to the fallback collides onto the same entry:
  // materialize() would produce the identical trace either way.
  sc::TraceSpec pinned = spec;
  pinned.seed = 7;
  EXPECT_EQ(cache.get(pinned, 123).get(), first.get());
  EXPECT_EQ(cache.hits(), 2u);

  // Different fallback seed is a distinct trace.
  EXPECT_NE(cache.get(spec, 8).get(), first.get());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TraceCache, DistinguishesEveryKnob) {
  sc::TraceCache cache;
  sc::TraceSpec base;
  base.kind = sc::TraceKind::DutyCycle;
  static_cast<void>(cache.get(base, 1));
  sc::TraceSpec variant = base;
  variant.span_hours = 7;
  static_cast<void>(cache.get(variant, 1));
  variant.hour = 3;
  static_cast<void>(cache.get(variant, 1));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(TraceCache, CachedBuildIsBitIdenticalToUncached) {
  // The determinism contract: routing build() through the cache must not
  // change a single metric.
  const sc::ScenarioSpec spec = tiny_scenario(17);
  sc::TraceCache cache;
  const sc::RunResult cold = sc::run_one(spec, sc::Policy::DrowsyDc, 17, nullptr);
  const sc::RunResult warm = sc::run_one(spec, sc::Policy::DrowsyDc, 17, &cache);
  const sc::RunResult reused = sc::run_one(spec, sc::Policy::DrowsyDc, 17, &cache);
  EXPECT_GT(cache.hits(), 0u);  // second run fed entirely from the cache
  const auto csv = [](const sc::RunResult& r) { return sc::to_csv({r}); };
  EXPECT_EQ(csv(cold), csv(warm));
  EXPECT_EQ(csv(cold), csv(reused));
}

TEST(TraceCache, BatchRunnerSharesTracesAcrossPolicyArms) {
  // 1 scenario x 3 policies x 2 seeds: each of the 4 per-seed traces is
  // materialized once and reused by the other two policy arms.
  sc::BatchRunner runner(2);
  const auto jobs = sc::cross({tiny_scenario(21)},
                              {sc::Policy::DrowsyDc, sc::Policy::NeatS3, sc::Policy::Oasis}, 2);
  const auto results = runner.run(jobs);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(runner.last_trace_misses(), 8u);  // 4 VMs x 2 seeds
  EXPECT_EQ(runner.last_trace_hits(), 16u);   // reused by 2 further policies
}

TEST(TraceCache, FileReplayIgnoresSeedsAndKeysByContent) {
  const std::string path = ::testing::TempDir() + "/cache_replay.csv";
  write_file(path, "a,b\n0.1,0.9\n0.2,0.8\n");
  sc::TraceCache cache;
  sc::TraceSpec spec;
  spec.kind = sc::TraceKind::FileReplay;
  spec.path = path;

  // Distinct fallback seeds (one per VM in a group) must all hit the one
  // entry: replay output is seed-independent.
  const auto first = cache.get(spec, 1);
  EXPECT_EQ(cache.get(spec, 2).get(), first.get());
  EXPECT_EQ(cache.get(spec, 3).get(), first.get());
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);

  // select / downsample are part of the identity.
  sc::TraceSpec named = spec;
  named.select = "b";
  EXPECT_NE(cache.get(named, 1).get(), first.get());
  sc::TraceSpec pooled = spec;
  pooled.downsample = 2;
  EXPECT_NE(cache.get(pooled, 1).get(), first.get());
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(TraceCache, SamePathChangedBytesIsAMiss) {
  const std::string path = ::testing::TempDir() + "/cache_replay_edit.csv";
  write_file(path, "a\n0.1\n0.2\n");
  sc::TraceCache cache;
  sc::TraceSpec spec;
  spec.kind = sc::TraceKind::FileReplay;
  spec.path = path;

  const auto before = cache.get(spec, 1);
  EXPECT_EQ(cache.misses(), 1u);
  write_file(path, "a\n0.5\n0.6\n");
  const auto after = cache.get(spec, 1);
  EXPECT_EQ(cache.misses(), 2u) << "content hash must key the entry, not the path";
  EXPECT_NE(after.get(), before.get());
  EXPECT_DOUBLE_EQ(after->hours()[0], 0.5);
  EXPECT_DOUBLE_EQ(before->hours()[0], 0.1) << "earlier handles keep the bytes they saw";

  // Restoring the original bytes hits the original entry again.
  write_file(path, "a\n0.1\n0.2\n");
  EXPECT_EQ(cache.get(spec, 1).get(), before.get());
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(TraceCache, ConcurrentGetsAgree) {
  sc::TraceCache cache;
  sc::TraceSpec spec;
  spec.kind = sc::TraceKind::GoogleLlmu;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const drowsy::trace::ActivityTrace>> results(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] { results[t] = cache.get(spec, 5); });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(cache.size(), 1u);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->hours(), results[0]->hours());
  }
  EXPECT_EQ(cache.hits() + cache.misses(), 8u);
}
