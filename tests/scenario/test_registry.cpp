#include "scenario/registry.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <stdexcept>

namespace sc = drowsy::scenario;
namespace sim = drowsy::sim;

namespace {

// The replay-* scenarios carry repo-relative trace paths; tests run from
// the build tree, so resolve them against the source tree (the same knob
// any out-of-repo run would use).  setenv's 0 keeps an explicit override.
[[maybe_unused]] const int kTraceRootInit = [] {
  ::setenv("DROWSY_TRACE_ROOT", DROWSY_SOURCE_DIR, 0);
  return 0;
}();

}  // namespace

TEST(ScenarioRegistry, BuiltinHasTheCatalogue) {
  const auto& reg = sc::ScenarioRegistry::builtin();
  EXPECT_GE(reg.size(), 8u);
  const std::vector<std::string> names = reg.names();
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), reg.size()) << "scenario names must be unique";
  // The paper's evaluation workloads are present by name.
  EXPECT_NE(reg.find("paper-testbed"), nullptr);
  EXPECT_NE(reg.find("paper-im-traces"), nullptr);
  EXPECT_NE(reg.find("paper-sim-phases"), nullptr);
}

TEST(ScenarioRegistry, FindAndAtAgree) {
  const auto& reg = sc::ScenarioRegistry::builtin();
  EXPECT_EQ(reg.find("no-such-scenario"), nullptr);
  EXPECT_THROW(static_cast<void>(reg.at("no-such-scenario")), std::out_of_range);
  EXPECT_EQ(&reg.at("paper-testbed"), reg.find("paper-testbed"));
}

TEST(ScenarioRegistry, EveryScenarioValidates) {
  for (const auto& spec : sc::ScenarioRegistry::builtin().all()) {
    EXPECT_EQ(spec.validate(), "") << spec.name;
    EXPECT_GT(spec.total_vms(), 0) << spec.name;
  }
}

TEST(ScenarioRegistry, EveryScenarioBuildsACluster) {
  for (const auto& spec : sc::ScenarioRegistry::builtin().all()) {
    auto run = sc::build(spec, sc::Policy::DrowsyDc, spec.seed);
    ASSERT_NE(run, nullptr) << spec.name;
    EXPECT_EQ(run->cluster.hosts().size(), static_cast<std::size_t>(spec.hosts))
        << spec.name;
    EXPECT_EQ(run->cluster.vms().size(), static_cast<std::size_t>(spec.total_vms()))
        << spec.name;
    // Every VM is placed and every trace is non-empty.
    for (const auto& vm : run->cluster.vms()) {
      EXPECT_NE(run->cluster.host_of(vm->id()), nullptr)
          << spec.name << ": " << vm->name();
      EXPECT_FALSE(vm->workload().empty()) << spec.name << ": " << vm->name();
    }
    EXPECT_EQ(run->baseline, nullptr) << "Drowsy-DC uses the built-in policy";
  }
}

TEST(ScenarioRegistry, BaselinePoliciesGetWired) {
  const auto& spec = sc::ScenarioRegistry::builtin().at("paper-testbed");
  for (const auto policy :
       {sc::Policy::NeatS3, sc::Policy::NeatVanilla, sc::Policy::NeatNoSuspend,
        sc::Policy::Oasis}) {
    auto run = sc::build(spec, policy, spec.seed);
    ASSERT_NE(run->baseline, nullptr) << sc::to_string(policy);
  }
}

TEST(ScenarioRegistry, PaperTestbedMatchesThePaperShape) {
  const auto& spec = sc::ScenarioRegistry::builtin().at("paper-testbed");
  EXPECT_EQ(spec.paper_figure.substr(0, 4), "Fig.");
  auto run = sc::build(spec, sc::Policy::DrowsyDc, spec.seed);
  ASSERT_EQ(run->cluster.hosts().size(), 4u);
  EXPECT_EQ(run->cluster.hosts()[0]->name(), "P2");
  EXPECT_EQ(run->cluster.hosts()[3]->name(), "P5");
  ASSERT_EQ(run->cluster.vms().size(), 8u);
  EXPECT_EQ(run->cluster.vms()[0]->name(), "V1");
  EXPECT_EQ(run->cluster.vms()[7]->name(), "V8");
  // V3 and V4 receive the exact same workload (the paper's key pair).
  EXPECT_EQ(run->cluster.vms()[2]->workload().hours(),
            run->cluster.vms()[3]->workload().hours());
  // V1 and V2 are LLMU but not identical.
  EXPECT_NE(run->cluster.vms()[0]->workload().hours(),
            run->cluster.vms()[1]->workload().hours());
}

TEST(ScenarioRegistry, RejectsInvalidAndDuplicate) {
  sc::ScenarioRegistry reg;
  sc::ScenarioSpec overfull;
  overfull.name = "overfull";
  overfull.hosts = 1;
  overfull.host_template = {"", 8, 16384, 2};
  overfull.vms = {{.name_prefix = "vm", .count = 3, .workload = {}}};  // 3 VMs, 2 slots
  EXPECT_THROW(reg.add(overfull), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(sc::build(overfull, sc::Policy::DrowsyDc, 1)),
               std::invalid_argument);

  sc::ScenarioSpec ok;
  ok.name = "ok";
  ok.hosts = 2;
  ok.host_template = {"", 8, 16384, 2};
  ok.vms = {{.name_prefix = "vm", .count = 2, .workload = {}}};
  reg.add(ok);
  EXPECT_THROW(reg.add(ok), std::invalid_argument) << "duplicate name must be rejected";
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ScenarioRegistry, ValidateCatchesCapacityProblems) {
  sc::ScenarioSpec s;
  s.name = "tight";
  s.hosts = 2;
  s.host_template = {"", 4, 8192, 0};  // unlimited slots, 4 vCPUs
  s.vms = {{.name_prefix = "fat", .count = 4, .vcpus = 4, .memory_mb = 1024, .workload = {}}};
  // Round-robin puts 2 fat VMs (8 vCPUs) on a 4-vCPU host.
  EXPECT_NE(s.validate(), "");
  s.vms[0].vcpus = 2;
  EXPECT_EQ(s.validate(), "");
}

TEST(ScenarioTrace, MaterializeIsDeterministic) {
  sc::TraceSpec spec;
  spec.kind = sc::TraceKind::PhaseWindow;
  spec.hour = 8;
  const auto a = sc::materialize(spec, 77);
  const auto b = sc::materialize(spec, 77);
  EXPECT_EQ(a.hours(), b.hours());
  const auto c = sc::materialize(spec, 78);
  EXPECT_NE(a.hours(), c.hours()) << "different fallback seeds must differ";
  // A pinned seed ignores the fallback.
  spec.seed = 1234;
  EXPECT_EQ(sc::materialize(spec, 1).hours(), sc::materialize(spec, 2).hours());
}

TEST(ScenarioTrace, EveryKindMaterializes) {
  using K = sc::TraceKind;
  for (const auto kind :
       {K::DailyBackup, K::ComicStrips, K::LlmuConstant, K::NutanixLike,
        K::DiplomaResults, K::OfficeHours, K::EndOfMonth, K::GoogleLlmu, K::RandomLlmi,
        K::PhaseWindow, K::DutyCycle}) {
    sc::TraceSpec spec;
    spec.kind = kind;
    const auto tr = sc::materialize(spec, 5);
    EXPECT_FALSE(tr.empty()) << sc::to_string(kind);
    for (const double v : tr.hours()) {
      ASSERT_GE(v, 0.0) << sc::to_string(kind);
      ASSERT_LE(v, 1.0) << sc::to_string(kind);
    }
  }
}

TEST(ScenarioTrace, DutyCycleHasTheRequestedShape) {
  sc::TraceSpec spec;
  spec.kind = sc::TraceKind::DutyCycle;
  spec.period_hours = 12;
  spec.span_hours = 3;
  spec.hour = 2;
  spec.level = 0.8;
  const auto tr = sc::materialize(spec, 9);
  for (std::size_t h = 0; h < 48; ++h) {
    const bool active = ((h % 12) + 12 - 2) % 12 < 3;
    if (active) {
      EXPECT_GT(tr.at_hour(h), 0.5) << "hour " << h;
    } else {
      EXPECT_EQ(tr.at_hour(h), 0.0) << "hour " << h;
    }
  }
}
