// Run probes: pure observation (results byte-identical with and without
// a probe), trace byte-identity across batch thread counts, and event
// profiles that account for every dispatched event.
#include "scenario/probes.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "expctl/json.hpp"
#include "scenario/batch_runner.hpp"

namespace ec = drowsy::expctl;
namespace fs = std::filesystem;
namespace obs = drowsy::obs;
namespace sc = drowsy::scenario;

namespace {

/// Same shape as the batch-runner tests: 2 hosts, 4 VMs, one day.
sc::ScenarioSpec tiny_scenario(const std::string& name, std::uint64_t seed) {
  sc::ScenarioSpec s;
  s.name = name;
  s.hosts = 2;
  s.host_template = {"", 8, 16384, 2};
  s.vms = {
      {.name_prefix = "idle",
       .count = 2,
       .workload = {.kind = sc::TraceKind::DailyBackup, .hour = 2}},
      {.name_prefix = "busy",
       .count = 2,
       .workload = {.kind = sc::TraceKind::LlmuConstant, .noise = 0.02}},
  };
  s.pretrain_days = 2;
  s.duration_days = 1;
  s.request_rate_per_hour = 30.0;
  s.seed = seed;
  return s;
}

fs::path fresh_dir(const std::string& leaf) {
  const fs::path dir = fs::temp_directory_path() / "drowsy_probe_test" / leaf;
  fs::remove_all(dir);
  return dir;
}

/// Every file in `dir` by name, with its full byte content.
std::map<std::string, std::string> slurp_dir(const fs::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    files[entry.path().filename().string()] = bytes.str();
  }
  return files;
}

}  // namespace

TEST(Probes, TraceFileNameEmbedsScenarioPolicySeedAndSpecHash) {
  const sc::ScenarioSpec spec = tiny_scenario("det", 21);
  const std::string name = sc::trace_file_name(spec, sc::Policy::DrowsyDc, 21);
  EXPECT_EQ(name.rfind("det-drowsy-dc-21-", 0), 0u) << name;
  EXPECT_NE(name.find(".trace.json"), std::string::npos);

  // Sweep-axis variants that share (scenario, policy, seed) still get
  // distinct files via the spec hash.
  sc::ScenarioSpec variant = spec;
  variant.request_rate_per_hour = 60.0;
  EXPECT_NE(sc::trace_file_name(variant, sc::Policy::DrowsyDc, 21), name);
}

TEST(Probes, TimelineTraceIsByteIdenticalAtOneAndFourThreads) {
  // The acceptance bar for --trace-out: timelines are stamped in sim
  // time only, so the batch thread schedule cannot leak into the bytes.
  const auto jobs = sc::cross({tiny_scenario("det", 21)},
                              {sc::Policy::DrowsyDc, sc::Policy::NeatS3}, 2);
  const fs::path dir1 = fresh_dir("serial");
  const fs::path dir4 = fresh_dir("wide");
  const sc::BatchRunner::CompletionCallback on_complete =
      [](std::size_t, const sc::RunResult&, double) {};

  sc::BatchRunner serial(1);
  sc::BatchRunner wide(4);
  const auto a = serial.run(jobs, on_complete, sc::timeline_probe(dir1.string()));
  const auto b = wide.run(jobs, on_complete, sc::timeline_probe(dir4.string()));
  EXPECT_EQ(sc::to_csv(a), sc::to_csv(b));

  const auto files1 = slurp_dir(dir1);
  const auto files4 = slurp_dir(dir4);
  EXPECT_EQ(files1.size(), jobs.size());
  ASSERT_EQ(files1.size(), files4.size());
  for (const auto& [name, bytes] : files1) {
    const auto it = files4.find(name);
    ASSERT_NE(it, files4.end()) << name << " missing at 4 threads";
    EXPECT_EQ(bytes, it->second) << name << " differs across thread counts";
  }

  // Each file is a loadable Chrome trace with at least one power event.
  for (const auto& [name, bytes] : files1) {
    const ec::Json doc = ec::Json::parse(bytes);
    EXPECT_GT(doc.at("traceEvents").size(), 0u) << name;
    EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms") << name;
  }
  fs::remove_all(fs::temp_directory_path() / "drowsy_probe_test");
}

TEST(Probes, ObservationNeverPerturbsTheSimulation) {
  const sc::ScenarioSpec spec = tiny_scenario("pure", 7);
  const sc::RunResult bare =
      sc::run_one(spec, sc::Policy::DrowsyDc, spec.seed);

  const fs::path dir = fresh_dir("pure");
  obs::EventProfile profile;
  const sc::RunProbe probe = sc::combine_probes(
      {sc::timeline_probe(dir.string()),
       sc::profile_probe(
           [&profile](const obs::EventProfile& p) { profile.merge(p); })});
  const sc::RunResult observed =
      sc::run_one(spec, sc::Policy::DrowsyDc, spec.seed, nullptr, &probe);

  EXPECT_EQ(sc::to_csv({bare}), sc::to_csv({observed}));
  EXPECT_EQ(sc::to_json({bare}), sc::to_json({observed}));

  // The composite probe delivered both halves: a trace file on disk and
  // a non-empty profile with the expected event classes.
  EXPECT_TRUE(fs::exists(dir / sc::trace_file_name(spec, sc::Policy::DrowsyDc,
                                                   spec.seed)));
  EXPECT_GT(profile.total_events(), 0u);
  EXPECT_GT(profile.events(obs::EventTag::Request), 0u);
  EXPECT_GT(profile.events(obs::EventTag::SuspendCheck), 0u);
  fs::remove_all(fs::temp_directory_path() / "drowsy_probe_test");
}

TEST(Probes, ProfileProbeAggregatesAcrossABatch) {
  const auto jobs =
      sc::cross({tiny_scenario("agg", 3)}, {sc::Policy::DrowsyDc}, 3);
  obs::EventProfile aggregate;
  std::mutex mutex;
  const sc::RunProbe probe =
      sc::profile_probe([&aggregate, &mutex](const obs::EventProfile& p) {
        const std::lock_guard<std::mutex> lock(mutex);
        aggregate.merge(p);
      });
  sc::BatchRunner runner(4);
  const auto results = runner.run(
      jobs, [](std::size_t, const sc::RunResult&, double) {}, probe);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_GT(aggregate.total_events(), 0u);
  // Tag counts sum to the total — the invariant the bench breakdown and
  // worker snapshots report.
  std::uint64_t sum = 0;
  for (const obs::EventTag tag : obs::all_event_tags()) {
    sum += aggregate.events(tag);
  }
  EXPECT_EQ(sum, aggregate.total_events());
}
